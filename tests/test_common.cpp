// Tests for icvbe/common: constants, Series, Table, Rng, AsciiPlot.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/common/rng.hpp"
#include "icvbe/common/series.hpp"
#include "icvbe/common/table.hpp"

namespace icvbe {
namespace {

TEST(Constants, ThermalVoltageAtRoomTemperature) {
  // kT/q at 300 K is the canonical 25.85 mV.
  EXPECT_NEAR(thermal_voltage(300.0), 0.025852, 1e-6);
}

TEST(Constants, ThermalVoltageScalesLinearly) {
  EXPECT_DOUBLE_EQ(thermal_voltage(600.0), 2.0 * thermal_voltage(300.0));
}

TEST(Constants, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(to_kelvin(25.0), 298.15);
  EXPECT_DOUBLE_EQ(to_celsius(to_kelvin(-50.88)), -50.88);
}

TEST(Constants, BoltzmannEvIsConsistent) {
  EXPECT_NEAR(kBoltzmannEv, 8.617333e-5, 1e-10);
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    ICVBE_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
  }
}

TEST(ErrorMacros, RequirePassesSilently) {
  EXPECT_NO_THROW(ICVBE_REQUIRE(true, "never"));
}

TEST(SeriesTest, PushAndAccess) {
  Series s("test");
  s.push_back(1.0, 10.0);
  s.push_back(2.0, 20.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.x(1), 2.0);
  EXPECT_DOUBLE_EQ(s.y(1), 20.0);
  EXPECT_EQ(s.name(), "test");
}

TEST(SeriesTest, ConstructorRejectsMismatchedLengths) {
  EXPECT_THROW(Series("bad", {1.0, 2.0}, {1.0}), Error);
}

TEST(SeriesTest, InterpolateInside) {
  Series s("lin", {0.0, 1.0, 2.0}, {0.0, 10.0, 40.0});
  EXPECT_DOUBLE_EQ(s.interpolate(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.interpolate(1.5), 25.0);
}

TEST(SeriesTest, InterpolateExtrapolatesLinearly) {
  Series s("lin", {0.0, 1.0}, {0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.interpolate(2.0), 20.0);
  EXPECT_DOUBLE_EQ(s.interpolate(-1.0), -10.0);
}

TEST(SeriesTest, InterpolateRequiresSortedX) {
  Series s("bad", {1.0, 0.5}, {0.0, 1.0});
  EXPECT_THROW((void)s.interpolate(0.7), Error);
}

TEST(SeriesTest, NearestIndex) {
  Series s("n", {0.0, 10.0, 20.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(s.nearest_index(12.0), 1u);
  EXPECT_EQ(s.nearest_index(-5.0), 0u);
  EXPECT_EQ(s.nearest_index(100.0), 2u);
}

TEST(SeriesTest, MinMax) {
  Series s("m", {3.0, 1.0, 2.0}, {30.0, -10.0, 20.0});
  EXPECT_DOUBLE_EQ(s.min_x(), 1.0);
  EXPECT_DOUBLE_EQ(s.max_x(), 3.0);
  EXPECT_DOUBLE_EQ(s.min_y(), -10.0);
  EXPECT_DOUBLE_EQ(s.max_y(), 30.0);
}

TEST(SeriesTest, LogYTransformsAndValidates) {
  Series s("p", {1.0, 2.0}, {1.0, std::exp(1.0)});
  Series l = s.log_y();
  EXPECT_NEAR(l.y(0), 0.0, 1e-15);
  EXPECT_NEAR(l.y(1), 1.0, 1e-15);

  Series bad("b", {1.0}, {-1.0});
  EXPECT_THROW((void)bad.log_y(), Error);
}

TEST(SeriesTest, SortedByX) {
  Series s("u", {3.0, 1.0, 2.0}, {30.0, 10.0, 20.0});
  Series t = s.sorted_by_x();
  EXPECT_TRUE(t.x_strictly_increasing());
  EXPECT_DOUBLE_EQ(t.y(0), 10.0);
  EXPECT_DOUBLE_EQ(t.y(2), 30.0);
}

TEST(TableTest, AlignedPrintContainsCells) {
  Table t({"name", "value"});
  t.add_row({"EG", "1.17"});
  t.add_row({"XTI", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("EG"), std::string::npos);
  EXPECT_NE(text.find("1.17"), std::string::npos);
  EXPECT_NE(text.find("XTI"), std::string::npos);
}

TEST(TableTest, RowWidthValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TableTest, CsvQuotesCommas) {
  Table t({"k", "v"});
  t.add_row({"x,y", "1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Formatting, FixedAndSci) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_sci(1.5e-8, 1), "1.5e-08");
  EXPECT_EQ(format_sig(1234.5678, 4), "1235");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(RngTest, ChildStreamsAreIndependent) {
  Rng a = Rng::child(7, 0);
  Rng b = Rng::child(7, 1);
  // Extremely unlikely to coincide if streams are decorrelated.
  bool any_different = false;
  for (int i = 0; i < 8; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, GaussianMomentsRoughlyCorrect) {
  Rng r(123);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.gaussian(2.0, 0.5);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, SpreadFactorCentredOnUnity) {
  Rng r(5);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.spread_factor(0.01);
  EXPECT_NEAR(sum / kN, 1.0, 0.005);
}

TEST(AsciiPlotTest, RendersGlyphsAndLegend) {
  Series s("ramp", {0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 2.0, 3.0});
  AsciiPlotOptions opt;
  opt.title = "ramp plot";
  AsciiPlot plot(opt);
  plot.add(s, '*');
  std::ostringstream os;
  plot.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find("ramp plot"), std::string::npos);
  EXPECT_NE(text.find("legend:"), std::string::npos);
}

TEST(AsciiPlotTest, EmptyPlotDoesNotCrash) {
  AsciiPlot plot;
  std::ostringstream os;
  plot.print(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(AsciiPlotTest, RejectsTinyGeometry) {
  AsciiPlotOptions opt;
  opt.width = 4;
  EXPECT_THROW(AsciiPlot{opt}, Error);
}

}  // namespace
}  // namespace icvbe
