// Unit tests for icvbe/linalg/sparse: the CSR SparseMatrix lifecycle and
// the SparseLuFactorization symbolic-reuse engine, checked against the
// dense LU on the same systems.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "icvbe/common/error.hpp"
#include "icvbe/linalg/matrix.hpp"
#include "icvbe/linalg/solve.hpp"
#include "icvbe/linalg/sparse.hpp"

namespace icvbe::linalg {
namespace {

TEST(SparseMatrixTest, BuildFreezeAccess) {
  SparseMatrix m(3, 3);
  EXPECT_FALSE(m.frozen());
  m.add(0, 0, 2.0);
  m.add(0, 2, 1.0);
  m.add(1, 1, 3.0);
  m.add(2, 0, -1.0);
  m.add(2, 2, 4.0);
  m.add(0, 0, 0.5);  // duplicate registration merges at freeze
  m.freeze_pattern();
  EXPECT_TRUE(m.frozen());
  EXPECT_EQ(m.nonzeros(), 5u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);  // outside pattern reads as zero
  EXPECT_DOUBLE_EQ(m.at(2, 0), -1.0);
}

TEST(SparseMatrixTest, FrozenAddAccumulatesAndRejectsOutsidePattern) {
  SparseMatrix m(2, 2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.freeze_pattern();
  m.add(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_THROW(m.add(0, 1, 1.0), Error);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  m.add(0, 0, 7.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
}

TEST(SparseMatrixTest, ZeroValueRegistersPatternEntry) {
  SparseMatrix m(2, 2);
  m.add(0, 0, 0.0);  // structural registration, value happens to be zero
  m.add(0, 1, 0.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 1.0);
  m.freeze_pattern();
  EXPECT_EQ(m.nonzeros(), 4u);
  m.add(0, 1, 5.0);  // must be inside the pattern
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
}

TEST(SparseMatrixTest, UnfreezeReopensPattern) {
  SparseMatrix m(2, 2);
  m.add(0, 0, 1.0);
  m.add(1, 1, 2.0);
  m.freeze_pattern();
  const auto stamp = m.pattern_stamp();
  m.unfreeze();
  m.add(0, 1, 3.0);
  m.freeze_pattern();
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
  EXPECT_NE(m.pattern_stamp(), stamp);
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  SparseMatrix m(3, 3);
  m.add(0, 0, 2.0);
  m.add(0, 1, -1.0);
  m.add(1, 0, -1.0);
  m.add(1, 1, 2.0);
  m.add(1, 2, -1.0);
  m.add(2, 1, -1.0);
  m.add(2, 2, 2.0);
  m.freeze_pattern();
  const Vector x{1.0, 2.0, 3.0};
  const Vector y = m.multiply(x);
  const Vector yd = m.to_dense().multiply(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], yd[i]);
}

TEST(SparseLuTest, SolvesTridiagonalSystem) {
  const std::size_t n = 50;
  SparseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, i, 4.0);
    if (i + 1 < n) {
      m.add(i, i + 1, -1.0);
      m.add(i + 1, i, -1.0);
    }
  }
  m.freeze_pattern();
  Vector b(n, 1.0);
  SparseLuFactorization lu;
  lu.refactor(m);
  const Vector x = lu.solve(b);
  const Vector ax = m.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-12);
}

TEST(SparseLuTest, HandlesZeroDiagonalMnaShape) {
  // Voltage-source-style MNA block: node conductances plus an aux row/col
  // pair with a structurally zero diagonal -- no-pivoting LU dies here.
  //   [ g  0  1 ] [v1]   [0]
  //   [ 0  g -1 ] [v2] = [0]
  //   [ 1 -1  0 ] [i ]   [E]
  SparseMatrix m(3, 3);
  m.add(0, 0, 1e-3);
  m.add(0, 2, 1.0);
  m.add(1, 1, 1e-3);
  m.add(1, 2, -1.0);
  m.add(2, 0, 1.0);
  m.add(2, 1, -1.0);
  m.freeze_pattern();
  SparseLuFactorization lu;
  lu.refactor(m);
  Vector b{0.0, 0.0, 5.0};
  lu.solve_in_place(b);
  const Vector ax = m.multiply(b);
  EXPECT_NEAR(ax[0], 0.0, 1e-12);
  EXPECT_NEAR(ax[1], 0.0, 1e-12);
  EXPECT_NEAR(ax[2], 5.0, 1e-12);
}

TEST(SparseLuTest, SingularMatrixThrows) {
  SparseMatrix m(2, 2);
  m.add(0, 0, 1.0);
  m.add(0, 1, 2.0);
  m.add(1, 0, 2.0);
  m.add(1, 1, 4.0);
  m.freeze_pattern();
  SparseLuFactorization lu;
  EXPECT_THROW(lu.refactor(m), NumericalError);
}

TEST(SparseLuTest, ZeroMatrixIsANumericalError) {
  // Same contract as the dense engine: a numerically zero matrix stays
  // inside the Newton fallback machinery (NumericalError), it does not
  // abort as API misuse.
  SparseMatrix m(2, 2);
  m.add(0, 0, 0.0);
  m.add(1, 1, 0.0);
  m.freeze_pattern();
  SparseLuFactorization lu;
  EXPECT_THROW(lu.refactor(m), NumericalError);
}

TEST(SparseLuTest, StructurallySingularThrows) {
  SparseMatrix m(2, 2);
  m.add(0, 0, 1.0);  // row 1 has no entries at all
  m.freeze_pattern();
  SparseLuFactorization lu;
  EXPECT_THROW(lu.refactor(m), NumericalError);
}

TEST(SparseLuTest, NonFiniteEntriesThrowAtRefactor) {
  SparseMatrix m(2, 2);
  m.add(0, 0, std::nan(""));
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 1.0);
  m.freeze_pattern();
  SparseLuFactorization lu;
  EXPECT_THROW(lu.refactor(m), NumericalError);
}

TEST(SparseLuTest, SymbolicAnalysisIsReused) {
  const std::size_t n = 30;
  SparseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, i, 3.0);
    if (i + 1 < n) {
      m.add(i, i + 1, -1.0);
      m.add(i + 1, i, -1.0);
    }
  }
  m.freeze_pattern();
  SparseLuFactorization lu;
  lu.refactor(m);
  EXPECT_EQ(lu.analysis_count(), 1);
  for (int pass = 0; pass < 5; ++pass) {
    m.fill(0.0);
    for (std::size_t i = 0; i < n; ++i) {
      m.add(i, i, 3.0 + 0.1 * pass);
      if (i + 1 < n) {
        m.add(i, i + 1, -1.0);
        m.add(i + 1, i, -1.0);
      }
    }
    lu.refactor(m);
    Vector b(n, 1.0);
    lu.solve_in_place(b);
    const Vector ax = m.multiply(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-12);
  }
  EXPECT_EQ(lu.analysis_count(), 1) << "numeric refactor re-ran the analysis";
}

TEST(SparseLuTest, ReanalyzesOnPivotCollapse) {
  // First factor with a dominant (0,0); then shrink it to ~0 so the frozen
  // pivot collapses and the engine must re-pivot instead of failing.
  SparseMatrix m(2, 2);
  m.add(0, 0, 10.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 1e-12);
  m.freeze_pattern();
  SparseLuFactorization lu;
  lu.refactor(m);
  const int analyses_before = lu.analysis_count();

  m.fill(0.0);
  m.add(0, 0, 0.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 1.0);
  lu.refactor(m);
  EXPECT_GT(lu.analysis_count(), analyses_before);
  Vector b{1.0, 3.0};
  lu.solve_in_place(b);
  // x solves [0 1; 1 1] x = [1, 3] -> x = (2, 1).
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

// Property sweep: random sparse diagonally-dominant systems agree with the
// dense LU to near machine precision, across repeated refactors.
class RandomSparseTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSparseTest, AgreesWithDenseLu) {
  const std::size_t n = 60;
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);

  SparseMatrix s(n, n);
  Matrix d(n, n, 0.0);
  auto put = [&](std::size_t r, std::size_t c, double v) {
    s.add(r, c, v);
    d(r, c) += v;
  };
  for (std::size_t i = 0; i < n; ++i) put(i, i, 5.0 + dist(gen));
  for (int e = 0; e < 240; ++e) {
    const std::size_t r = pick(gen);
    const std::size_t c = pick(gen);
    if (r != c) put(r, c, dist(gen));
  }
  s.freeze_pattern();

  SparseLuFactorization slu;
  slu.refactor(s);
  LuFactorization dlu(d);
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = dist(gen);
  const Vector xs = slu.solve(b);
  const Vector xd = dlu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSparseTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ROADMAP sparse follow-up (c): the dense engine's condition_estimate()
// now has a sparse counterpart using the same +/-1 probe, so the two must
// report comparable numbers on identical systems.
TEST(SparseLuTest, ConditionEstimateMatchesDenseWithin10x) {
  for (const unsigned seed : {11u, 22u, 33u, 44u}) {
    const std::size_t n = 24;
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    SparseMatrix s(n, n);
    Matrix d(n, n, 0.0);
    auto put = [&](std::size_t r, std::size_t c, double v) {
      s.add(r, c, v);
      d(r, c) += v;
    };
    for (std::size_t i = 0; i < n; ++i) put(i, i, 4.0 + dist(gen));
    for (int e = 0; e < 80; ++e) {
      const std::size_t r = pick(gen);
      const std::size_t c = pick(gen);
      if (r != c) put(r, c, dist(gen));
    }
    s.freeze_pattern();
    SparseLuFactorization slu;
    slu.refactor(s);
    const LuFactorization dlu(d);
    const double cs = slu.condition_estimate();
    const double cd = dlu.condition_estimate();
    ASSERT_GT(cd, 0.0);
    EXPECT_GT(cs, cd / 10.0) << "seed " << seed;
    EXPECT_LT(cs, cd * 10.0) << "seed " << seed;
    // Both see a well-conditioned system as such.
    EXPECT_LT(cs, 1e4);
  }
}

// The fill-heavy counterpart: a 2-D conductance mesh is where the AMD
// ordering leaves a dense trailing region and the supernode kernel takes
// over the tail of the factor. The condition probe walks that mixed
// sparse/supernodal factor, so pin it to the dense engine's number on the
// same system -- a divergence here means the supernodal triangular solves
// drifted from the reference factorisation.
TEST(SparseLuTest, ConditionEstimateMatchesDenseOnFillHeavyMesh) {
  const int g = 14;  // 196 unknowns, enough elimination fill to supernode
  const std::size_t n = static_cast<std::size_t>(g) * g;
  std::mt19937 gen(7u);
  std::uniform_real_distribution<double> dist(0.5, 2.0);
  SparseMatrix s(n, n);
  Matrix d(n, n, 0.0);
  std::vector<double> diag(n, 1e-3);
  auto idx = [g](int x, int y) { return static_cast<std::size_t>(x * g + y); };
  auto couple = [&](std::size_t a, std::size_t b) {
    const double c = dist(gen);
    s.add(a, b, -c);
    s.add(b, a, -c);
    d(a, b) -= c;
    d(b, a) -= c;
    diag[a] += c;
    diag[b] += c;
  };
  for (int x = 0; x < g; ++x) {
    for (int y = 0; y < g; ++y) {
      if (x + 1 < g) couple(idx(x, y), idx(x + 1, y));
      if (y + 1 < g) couple(idx(x, y), idx(x, y + 1));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    s.add(i, i, diag[i]);
    d(i, i) += diag[i];
  }
  s.freeze_pattern();

  SparseLuFactorization slu;
  SparseOptions opts;  // force the supernode at this size (the production
  opts.supernode_min = 8;       // 0.8-density cut keeps 196 unknowns fully
  opts.supernode_density = 0.3;  // sparse -- here we want the mixed walk)
  slu.set_options(opts);
  slu.refactor(s);
  ASSERT_GT(slu.supernode_size(), 0u)
      << "mesh did not engage the supernode kernel; the case would not "
         "cover the mixed factor walk";
  const LuFactorization dlu(d);
  const double cs = slu.condition_estimate();
  const double cd = dlu.condition_estimate();
  ASSERT_GT(cd, 0.0);
  EXPECT_GT(cs, cd / 10.0);
  EXPECT_LT(cs, cd * 10.0);
}

TEST(SparseLuTest, ConditionEstimateGrowsOnIllConditionedSystem) {
  const std::size_t n = 8;
  SparseMatrix s(n, n);
  Matrix d(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = i + 1 == n ? 1e-9 : 2.0;  // one nearly-dependent row
    s.add(i, i, v);
    d(i, i) = v;
  }
  s.freeze_pattern();
  SparseLuFactorization slu;
  slu.refactor(s);
  const LuFactorization dlu(d);
  EXPECT_GT(slu.condition_estimate(), 1e8);
  EXPECT_GT(slu.condition_estimate(), dlu.condition_estimate() / 10.0);
  EXPECT_LT(slu.condition_estimate(), dlu.condition_estimate() * 10.0);
}

// The transient engine restamps the same pattern with wildly different
// values (companion conductances scale with 1/h): if the frozen pivot
// order becomes numerically unstable for the new values, refactor() must
// re-analyse instead of returning a garbage factorisation.
TEST(SparseLuTest, ReanalyzesOnFrozenPivotGrowthBlowup) {
  // Analysis values make (0,0) an attractive pivot; the restamp shrinks it
  // to 1e-6 (still far above the singularity tolerance) while raising the
  // couplings through it to 1e4, so the frozen elimination multiplier is
  // 1e10 and the fill-in reaches ~1e14 -- past the 1e8 * max|A| growth cap.
  SparseMatrix m(3, 3);
  m.add(0, 0, 1.0);
  m.add(0, 1, 1.0);
  m.add(1, 0, 1.0);
  m.add(1, 1, 1.0 + 1e-3);
  m.add(1, 2, 1.0);
  m.add(2, 1, 1.0);
  m.add(2, 2, 1.0);
  m.freeze_pattern();
  SparseLuFactorization lu;
  lu.refactor(m);
  const int analyses_before = lu.analysis_count();

  m.fill(0.0);
  m.add(0, 0, 1e-6);
  m.add(0, 1, 1e4);
  m.add(1, 0, 1e4);
  m.add(1, 1, 1.0);
  m.add(1, 2, 1.0);
  m.add(2, 1, 1.0);
  m.add(2, 2, 1.0);
  lu.refactor(m);
  EXPECT_GT(lu.analysis_count(), analyses_before)
      << "growth guard did not trigger a re-analysis";
  Vector b{1.0, 2.0, 3.0};
  lu.solve_in_place(b);
  const Vector ax = m.multiply(b);
  EXPECT_NEAR(ax[0], 1.0, 1e-2);  // residual scale ~ max|A| * eps-ish
  EXPECT_NEAR(ax[1], 2.0, 1e-2);
  EXPECT_NEAR(ax[2], 3.0, 1e-2);
}

}  // namespace
}  // namespace icvbe::linalg
