// Dense-vs-sparse equivalence and stress harness over generated synthetic
// netlists (spice/netlist_gen.hpp): the sparse CSR engine must reproduce
// the dense workspace engine's solutions to <= 1e-10 across DC solves and
// full analysis plans, stay allocation-free per point (this binary links
// icvbe_alloc_hook), and keep the plan contract's bit-identical parallel
// fanout.
//
// Default sizes keep the suite inside the ordinary ctest budget; set
// ICVBE_SPARSE_STRESS=1 (the Release CI job does) to add the large
// configurations.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/netlist_gen.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace icvbe::spice {
namespace {

constexpr double kAgreeTol = 1e-10;

bool stress_enabled() {
  const char* env = std::getenv("ICVBE_SPARSE_STRESS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Newton tolerances tight enough that both engines converge to within
/// ~1e-12 of the true operating point: at the default reltol=1e-6 each
/// engine would legitimately stop microvolts from the root (and from each
/// other), drowning the 1e-10 comparison in solver slack. The absolute
/// floors stay above the ~3e-12 iterate noise of a 500-unknown solve, or
/// convergence would be unreachable.
NewtonOptions tight_options(SparseMode mode) {
  NewtonOptions opt;
  opt.v_abstol = 1e-11;
  opt.i_abstol = 1e-14;
  opt.reltol = 1e-12;
  opt.sparse = mode;
  return opt;
}

struct EquivalenceCase {
  SyntheticTopology topology;
  int nodes;
};

std::vector<EquivalenceCase> equivalence_cases() {
  std::vector<EquivalenceCase> cases = {
      {SyntheticTopology::kResistorLadder, 50},
      {SyntheticTopology::kResistorLadder, 500},
      {SyntheticTopology::kDiodeLadder, 50},
      {SyntheticTopology::kDiodeLadder, 200},
      {SyntheticTopology::kBjtLadder, 50},
      {SyntheticTopology::kBjtLadder, 200},
      {SyntheticTopology::kMesh, 100},
      {SyntheticTopology::kMesh, 500},
      {SyntheticTopology::kGrid, 400},
      {SyntheticTopology::kClockTree, 300},
  };
  if (stress_enabled()) {
    cases.push_back({SyntheticTopology::kResistorLadder, 2000});
    cases.push_back({SyntheticTopology::kDiodeLadder, 1000});
    cases.push_back({SyntheticTopology::kMesh, 1000});
    cases.push_back({SyntheticTopology::kGrid, 2500});
    cases.push_back({SyntheticTopology::kClockTree, 4000});
  }
  return cases;
}

std::string case_name(const EquivalenceCase& c) {
  return std::string(topology_name(c.topology)) + "/" +
         std::to_string(c.nodes);
}

ParsedNetlist parse_case(const EquivalenceCase& c, std::uint64_t seed = 42) {
  SyntheticNetlistSpec spec;
  spec.topology = c.topology;
  spec.nodes = c.nodes;
  spec.seed = seed;
  return parse_netlist(generate_netlist(spec));
}

TEST(SparseEquivalence, DcOperatingPointMatchesDense) {
  for (const EquivalenceCase& c : equivalence_cases()) {
    SCOPED_TRACE(case_name(c));
    auto dense_deck = parse_case(c);
    auto sparse_deck = parse_case(c);

    SimSession dense(*dense_deck.circuit, tight_options(SparseMode::kDense));
    SimSession sparse(*sparse_deck.circuit,
                      tight_options(SparseMode::kSparse));
    EXPECT_FALSE(dense.uses_sparse_engine());
    EXPECT_TRUE(sparse.uses_sparse_engine());
    ASSERT_EQ(dense.unknown_count(), sparse.unknown_count());

    const Unknowns& xd = dense.solve_or_throw();
    const Unknowns& xs = sparse.solve_or_throw();
    for (std::size_t i = 0; i < xd.size(); ++i) {
      EXPECT_NEAR(xd.raw()[i], xs.raw()[i], kAgreeTol)
          << "unknown " << i << " of " << xd.size();
    }
  }
}

TEST(SparseEquivalence, DeckPlanColumnsMatchDense) {
  for (const EquivalenceCase& c : equivalence_cases()) {
    SCOPED_TRACE(case_name(c));
    auto dense_deck = parse_case(c);
    auto sparse_deck = parse_case(c);
    ASSERT_TRUE(dense_deck.plan.has_value());

    AnalysisPlan plan = *dense_deck.plan;
    plan.options = tight_options(SparseMode::kDense);
    SimSession dense(*dense_deck.circuit, plan.options);
    const SweepResult rd = dense.run(plan);

    plan.options = tight_options(SparseMode::kSparse);
    SimSession sparse(*sparse_deck.circuit, plan.options);
    const SweepResult rs = sparse.run(plan);

    ASSERT_EQ(rd.rows(), rs.rows());
    ASSERT_EQ(rd.probe_count(), rs.probe_count());
    for (std::size_t p = 0; p < rd.probe_count(); ++p) {
      for (std::size_t r = 0; r < rd.rows(); ++r) {
        EXPECT_NEAR(rd.value(p, r), rs.value(p, r), kAgreeTol)
            << "probe " << p << " row " << r;
      }
    }
  }
}

TEST(SparseEquivalence, AutoModePicksEngineByThreshold) {
  // Default auto threshold: a 500-node deck binds sparse ...
  auto big = parse_case({SyntheticTopology::kResistorLadder, 500});
  SimSession big_session(*big.circuit);
  EXPECT_TRUE(big_session.uses_sparse_engine());

  // ... a deck below the threshold stays dense ...
  auto small = parse_case({SyntheticTopology::kResistorLadder, 10});
  SimSession small_session(*small.circuit);
  EXPECT_FALSE(small_session.uses_sparse_engine());

  // ... and a custom threshold moves the crossover.
  NewtonOptions opt;
  opt.sparse_threshold = 8;
  auto small2 = parse_case({SyntheticTopology::kResistorLadder, 10});
  SimSession forced(*small2.circuit, opt);
  EXPECT_TRUE(forced.uses_sparse_engine());
}

TEST(SparseEquivalence, TwoAxisPlanBitIdenticalAcrossThreadCounts) {
  // The plan contract (test_plan) on the sparse path: outer rows fanned
  // across per-thread clones must produce bit-identical columns for any
  // thread count -- workers are pinned to the parent session's engine.
  const EquivalenceCase c{SyntheticTopology::kDiodeLadder, 200};
  AnalysisPlan plan;
  plan.name = "sparse-fanout";
  plan.axes.push_back(
      SweepAxis::temperature_celsius(SweepGrid::list({0.0, 27.0, 75.0})));
  plan.axes.push_back(
      SweepAxis::vsource("V1", SweepGrid::linear(3.0, 6.0, 11)));
  plan.probes.push_back(parse_probe("V(n200)"));
  plan.probes.push_back(parse_probe("I(V1)"));

  std::vector<SweepResult> results;
  for (unsigned threads : {1u, 2u, 4u}) {
    auto deck = parse_case(c);
    deck.circuit->set_temperature(300.15);
    plan.threads = threads;
    SimSession session(*deck.circuit, tight_options(SparseMode::kSparse));
    ASSERT_TRUE(session.uses_sparse_engine());
    results.push_back(session.run(plan));
  }
  for (std::size_t v = 1; v < results.size(); ++v) {
    for (std::size_t p = 0; p < results[0].probe_count(); ++p) {
      for (std::size_t r = 0; r < results[0].rows(); ++r) {
        EXPECT_EQ(results[0].value(p, r), results[v].value(p, r))
            << "thread variant " << v << " probe " << p << " row " << r;
      }
    }
  }
}

TEST(SparseEquivalence, OrderingSweepMatchesDenseAndLegacy) {
  // The ordering dimension of the equivalence matrix: the legacy exact
  // minimum-degree path (pre-AMD default, kept behind SparseOptions), the
  // new AMD+BTF default, and a forced-supernode AMD variant must all land
  // on the dense engine's answer on every deck shape.
  struct Variant {
    const char* name;
    linalg::SparseOptions options;
  };
  linalg::SparseOptions forced_sn;
  forced_sn.supernode_min = 8;
  forced_sn.supernode_density = 0.3;
  const std::vector<Variant> variants = {
      {"legacy-md", linalg::SparseOptions::legacy()},
      {"amd-btf-default", linalg::SparseOptions{}},
      {"amd-forced-supernode", forced_sn},
  };
  for (const EquivalenceCase& c : equivalence_cases()) {
    SCOPED_TRACE(case_name(c));
    auto dense_deck = parse_case(c);
    SimSession dense(*dense_deck.circuit, tight_options(SparseMode::kDense));
    const Unknowns& xd = dense.solve_or_throw();

    for (const Variant& v : variants) {
      SCOPED_TRACE(v.name);
      auto deck = parse_case(c);
      NewtonOptions opt = tight_options(SparseMode::kSparse);
      opt.sparse_options = v.options;
      SimSession sparse(*deck.circuit, opt);
      ASSERT_TRUE(sparse.uses_sparse_engine());
      const Unknowns& xs = sparse.solve_or_throw();
      ASSERT_EQ(xd.size(), xs.size());
      for (std::size_t i = 0; i < xd.size(); ++i) {
        EXPECT_NEAR(xd.raw()[i], xs.raw()[i], kAgreeTol)
            << "unknown " << i << " under ordering variant " << v.name;
      }
    }
  }
}

TEST(SparseEquivalence, SparseSolveIsAllocationFreeAfterSetup) {
  auto deck = parse_case({SyntheticTopology::kMesh, 500});
  SimSession session(*deck.circuit, tight_options(SparseMode::kSparse));
  ASSERT_TRUE(session.uses_sparse_engine());

  // First solve performs the one-time symbolic analysis.
  (void)session.solve_or_throw();
  // Steady-state warm solves must not touch the heap at all.
  auto& v1 = deck.circuit->get<VoltageSource>("V1");
  const std::uint64_t a0 = testing::allocation_count();
  for (int i = 0; i < 5; ++i) {
    v1.set_voltage(5.0 + 0.05 * i);
    (void)session.solve_or_throw();
  }
  const std::uint64_t a1 = testing::allocation_count();
  EXPECT_EQ(a1 - a0, 0u)
      << "sparse Newton steady state allocated on the heap";
}

TEST(SparseEquivalence, SparsePlanAllocationsIndependentOfPointCount) {
  // The test_plan discipline on the sparse path: a run over 10x the
  // points must allocate exactly as much as the small run (per-run setup
  // only, nothing per point).
  auto deck = parse_case({SyntheticTopology::kMesh, 200});
  SimSession session(*deck.circuit, tight_options(SparseMode::kSparse));
  ASSERT_TRUE(session.uses_sparse_engine());

  AnalysisPlan small;
  small.name = "alloc-small";
  small.axes.push_back(
      SweepAxis::vsource("V1", SweepGrid::linear(3.0, 6.0, 10)));
  small.probes.push_back(parse_probe("V(" +
                                     generated_probe_node(
                                         {SyntheticTopology::kMesh, 200, 42,
                                          true}) +
                                     ")"));
  AnalysisPlan large = small;
  large.name = "alloc-large";
  large.axes[0] = SweepAxis::vsource("V1", SweepGrid::linear(3.0, 6.0, 100));

  // Warm-up run: symbolic analysis plus any lazy result-shape setup.
  (void)session.run(small);

  const std::uint64_t a0 = testing::allocation_count();
  const SweepResult rs = session.run(small);
  const std::uint64_t a1 = testing::allocation_count();
  const SweepResult rl = session.run(large);
  const std::uint64_t a2 = testing::allocation_count();
  EXPECT_EQ(rs.rows(), 10u);
  EXPECT_EQ(rl.rows(), 100u);
  EXPECT_EQ(a1 - a0, a2 - a1)
      << "sparse run() allocation count scales with point count";
}

TEST(SparseEquivalence, SymbolicAnalysisSurvivesAWholePlanRun) {
  // Engine-level counterpart of the zero-alloc assertion: the whole sweep
  // must reuse one symbolic analysis (pattern and pivot order are
  // operating-point independent).
  auto deck = parse_case({SyntheticTopology::kDiodeLadder, 200});
  SimSession session(*deck.circuit, tight_options(SparseMode::kSparse));
  ASSERT_TRUE(deck.plan.has_value());
  AnalysisPlan plan = *deck.plan;
  plan.options = tight_options(SparseMode::kSparse);
  const SweepResult r = session.run(plan);
  EXPECT_GT(r.rows(), 0u);
}

}  // namespace
}  // namespace icvbe::spice
