#include "icvbe/server/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

namespace icvbe::server {
namespace {

TEST(Framing, EncodesLengthPrefixedHeadAndBody) {
  EXPECT_EQ(encode_frame({"STATUS"}), "6\nSTATUS");
  EXPECT_EQ(encode_frame({"LOAD", "s1"}, "R1 a 0 1k\n.END\n"),
            "23\nLOAD s1\nR1 a 0 1k\n.END\n");
}

TEST(Framing, RoundTripsThroughTheDecoder) {
  FrameDecoder dec;
  dec.feed(encode_frame({"RUN", "r1", "s1", "TRAN", "THREADS=4"}));
  dec.feed(encode_frame({"PATCH", "s1"}, "R R1 2k\nTEMP 85\n"));
  auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->head,
            (std::vector<std::string>{"RUN", "r1", "s1", "TRAN",
                                      "THREADS=4"}));
  EXPECT_TRUE(f->body.empty());
  f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->head, (std::vector<std::string>{"PATCH", "s1"}));
  EXPECT_EQ(f->body, "R R1 2k\nTEMP 85\n");
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.pending(), 0u);
}

TEST(Framing, BodyMayContainBlankLinesAndBinaryishText) {
  const std::string body = "* deck\n\n\nV1 in 0 1\n\n.END\n";
  FrameDecoder dec;
  dec.feed(encode_frame({"LOAD", "deck"}, body));
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->body, body);
}

TEST(Framing, DecoderReassemblesByteAtATime) {
  const std::string wire = encode_frame({"DATA", "r1", "7"}, "1.5 -2.25") +
                           encode_frame({"DONE", "r1", "8"});
  FrameDecoder dec;
  std::vector<Frame> got;
  for (const char c : wire) {
    dec.feed(std::string_view(&c, 1));
    while (auto f = dec.next()) got.push_back(*std::move(f));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].head, (std::vector<std::string>{"DATA", "r1", "7"}));
  EXPECT_EQ(got[0].body, "1.5 -2.25");
  EXPECT_EQ(got[1].head, (std::vector<std::string>{"DONE", "r1", "8"}));
}

TEST(Framing, DecoderHandsBackFramesAcrossChunkBoundaries) {
  // One feed ending mid-payload, the next completing it plus a second
  // whole frame.
  const std::string a = encode_frame({"OK", "RUN", "r1"});
  const std::string b = encode_frame({"INIT", "r1"}, "AXES\tTIME\n");
  const std::string wire = a + b;
  FrameDecoder dec;
  dec.feed(wire.substr(0, a.size() - 2));
  EXPECT_FALSE(dec.next().has_value());
  dec.feed(wire.substr(a.size() - 2));
  ASSERT_TRUE(dec.next().has_value());
  const auto f = dec.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->head, (std::vector<std::string>{"INIT", "r1"}));
  EXPECT_EQ(f->body, "AXES\tTIME\n");
}

TEST(Framing, HeadTokenisationCollapsesRunsOfSpaces) {
  const Frame f = parse_payload("RUN   r1  s1 DC");
  EXPECT_EQ(f.head, (std::vector<std::string>{"RUN", "r1", "s1", "DC"}));
  EXPECT_EQ(f.tok(3), "DC");
  EXPECT_EQ(f.tok(4), "");  // past-the-end tok() is ""
}

TEST(Framing, MalformedLengthPrefixesAreRejected) {
  {
    FrameDecoder dec;
    dec.feed("12x\nwhatever");
    EXPECT_THROW((void)dec.next(), ProtocolError);
  }
  {
    FrameDecoder dec;
    dec.feed("\npayload");  // empty prefix
    EXPECT_THROW((void)dec.next(), ProtocolError);
  }
  {
    FrameDecoder dec;
    dec.feed("99999999999999\n");  // 14 digits: longer than any sane size
    EXPECT_THROW((void)dec.next(), ProtocolError);
  }
  {
    FrameDecoder dec;
    // No newline within the first 20 bytes: cannot be a length prefix.
    dec.feed("GET / HTTP/1.1 some garbage");
    EXPECT_THROW((void)dec.next(), ProtocolError);
  }
}

TEST(Framing, OversizedFrameIsRejectedNotBuffered) {
  FrameDecoder dec;
  dec.feed(std::to_string(kMaxFrameBytes + 1) + "\n");
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(Framing, ShortUnterminatedPrefixWaitsForMoreBytes) {
  FrameDecoder dec;
  dec.feed("123");  // could still become "1234\n..." -- not an error yet
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.pending(), 3u);
}

TEST(FormatValue, RoundTripsBitExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.5,
                          1.0 / 3.0,
                          6.62607015e-34,
                          1.7976931348623157e308,
                          5e-324,  // min subnormal
                          0.1,
                          123456.789e-12,
                          -2.2250738585072014e-308};
  for (const double v : cases) {
    const std::string text = format_value(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(back, v) << "text was '" << text << "'";
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << text;
  }
}

TEST(FormatValue, PrefersShortRepresentations) {
  EXPECT_EQ(format_value(1.0), "1");
  EXPECT_EQ(format_value(0.5), "0.5");
  EXPECT_EQ(format_value(1e-12), "1e-12");
}

TEST(PatchBody, ParsesEveryTargetKind) {
  const auto cmds = parse_patch_body(
      "R R1 2k\n"
      "C C1 10n\n"
      "L L1 1u\n"
      "V V1 3.3\n"
      "I I1 1m\n"
      "TEMP 85\n"
      "\n");  // blank lines are ignored
  ASSERT_EQ(cmds.size(), 6u);
  EXPECT_EQ(cmds[0].target, PatchCommand::Target::kResistor);
  EXPECT_EQ(cmds[0].name, "R1");
  EXPECT_DOUBLE_EQ(cmds[0].value, 2e3);
  EXPECT_EQ(cmds[1].target, PatchCommand::Target::kCapacitor);
  EXPECT_DOUBLE_EQ(cmds[1].value, 10e-9);
  EXPECT_EQ(cmds[2].target, PatchCommand::Target::kInductor);
  EXPECT_DOUBLE_EQ(cmds[2].value, 1e-6);
  EXPECT_EQ(cmds[3].target, PatchCommand::Target::kVsource);
  EXPECT_DOUBLE_EQ(cmds[3].value, 3.3);
  EXPECT_EQ(cmds[4].target, PatchCommand::Target::kIsource);
  EXPECT_DOUBLE_EQ(cmds[4].value, 1e-3);
  EXPECT_EQ(cmds[5].target, PatchCommand::Target::kTemperature);
  EXPECT_TRUE(cmds[5].name.empty());
  EXPECT_DOUBLE_EQ(cmds[5].value, 85.0);
}

TEST(PatchBody, TargetsAreCaseInsensitive) {
  const auto cmds = parse_patch_body("r R1 1k\ntemp 27\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].target, PatchCommand::Target::kResistor);
  EXPECT_EQ(cmds[1].target, PatchCommand::Target::kTemperature);
}

TEST(PatchBody, MalformedLinesNameTheOffendingText) {
  EXPECT_THROW((void)parse_patch_body("Q Q1 1k\n"), ProtocolError);
  EXPECT_THROW((void)parse_patch_body("R R1\n"), ProtocolError);
  EXPECT_THROW((void)parse_patch_body("R R1 1k extra\n"), ProtocolError);
  EXPECT_THROW((void)parse_patch_body("TEMP\n"), ProtocolError);
  EXPECT_THROW((void)parse_patch_body("R R1 notanumber\n"), ProtocolError);
  try {
    (void)parse_patch_body("R R1 bogus\n");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("R R1 bogus"), std::string::npos);
  }
}

}  // namespace
}  // namespace icvbe::server
