// Integration tests: the full paper pipeline, asserting the published
// signatures end to end (virtual silicon -> campaigns -> extraction).

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

namespace icvbe {
namespace {

class PaperPipelineTest : public ::testing::Test {
 protected:
  lab::SiliconLot lot_;
};

TEST_F(PaperPipelineTest, IdealLabRecoversTruthWithBothMethods) {
  // With no parasitics, ideal instruments and die == chamber, both methods
  // must land close to the lot's true (EG, XTI). Residual bias comes from
  // base current and the reverse Early factor -- second-order effects the
  // paper's closed forms also neglect.
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  lab::DieSample s = lot_.sample(0);
  s.opamp_offset = 0.0;
  s.qa.iss_e = s.qb.iss_e = s.qin.iss_e = 0.0;
  s.qa.iss = s.qb.iss = s.qin.iss = 0.0;
  lab::Laboratory lab(s, cfg);

  const auto pts = lab.vbe_vs_temperature(
      1e-6, {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0});
  extract::BestFitOptions opt;
  opt.t0 = 298.15;
  const auto fit = extract::best_fit_eg_xti(
      extract::samples_from_lab(pts), opt);
  EXPECT_NEAR(fit.eg, lot_.true_eg(), 0.02);
  EXPECT_NEAR(fit.xti, lot_.true_xti(), 0.8);

  const auto sweep = lab.test_cell_sweep({-25.0, 25.0, 75.0});
  const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);
  EXPECT_NEAR(m.with_computed_t.eg, lot_.true_eg(), 0.02);
  EXPECT_NEAR(m.with_computed_t.xti, lot_.true_xti(), 0.8);
  // Computed temperatures agree with the (ideal) chamber values within the
  // second-order residue.
  EXPECT_NEAR(m.t1_computed, to_kelvin(-25.0), 0.6);
  EXPECT_NEAR(m.t3_computed, to_kelvin(75.0), 0.6);
}

TEST_F(PaperPipelineTest, TableOneSignatureAcrossFiveSamples) {
  // Paper Table 1: T_measured - T_computed in [-4.61, -1.82] K at
  // T1 = 247 K and [+3.99, +7.28] K at T3 = 348 K, zero at the pinned
  // reference. We assert slightly widened bands (our lot is not theirs).
  for (int i = 1; i <= 5; ++i) {
    lab::CampaignConfig cfg;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    lab::Laboratory lab(lot_.sample(i), cfg);
    const auto sweep = lab.test_cell_sweep({-26.15, 23.85, 74.85});
    const auto m = extract::meijer_from_cell(sweep, -26.15, 23.85, 74.85);
    const auto cmp = extract::compare_temperatures(m);
    EXPECT_GT(cmp.delta_t1(), -6.0) << "sample " << i;
    EXPECT_LT(cmp.delta_t1(), -1.0) << "sample " << i;
    EXPECT_GT(cmp.delta_t3(), +2.5) << "sample " << i;
    EXPECT_LT(cmp.delta_t3(), +9.0) << "sample " << i;
  }
}

TEST_F(PaperPipelineTest, ComputedTemperatureTracksTrueDieTemperature) {
  // The whole point of the method: eq. (16) reveals the die temperature.
  // The computed values must be far closer to the true die temperature
  // than the sensor readings are.
  lab::CampaignConfig cfg;
  cfg.seed = 31;
  lab::Laboratory lab(lot_.sample(2), cfg);
  const auto sweep = lab.test_cell_sweep({-26.15, 23.85, 74.85});
  const auto m = extract::meijer_from_cell(sweep, -26.15, 23.85, 74.85);
  const double sensor_err_t1 = std::abs(m.p1.t_sensor - m.p1.t_die_true);
  const double computed_err_t1 = std::abs(m.t1_computed - m.p1.t_die_true);
  EXPECT_LT(computed_err_t1, sensor_err_t1);
  const double sensor_err_t3 = std::abs(m.p3.t_sensor - m.p3.t_die_true);
  const double computed_err_t3 = std::abs(m.t3_computed - m.p3.t_die_true);
  EXPECT_LT(computed_err_t3, sensor_err_t3);
}

TEST_F(PaperPipelineTest, AnalyticalBeatsClassicalOnRealData) {
  // Fig. 6 / Fig. 8 consequence: the computed-temperature extraction (C3)
  // lands near the silicon truth while the classical best fit (C1), fed
  // sensor temperatures, is pulled far along the characteristic straight.
  lab::CampaignConfig cfg;
  cfg.seed = 47;
  lab::Laboratory lab(lot_.sample(1), cfg);

  const auto pts = lab.vbe_vs_temperature(
      1e-6, {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0});
  extract::BestFitOptions opt;
  opt.t0 = 298.15;
  const auto c1 =
      extract::best_fit_eg_xti(extract::samples_from_lab(pts), opt);

  const auto sweep = lab.test_cell_sweep({-25.0, 25.0, 75.0});
  const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);
  const auto& c3 = m.with_computed_t;

  const double c1_err = std::abs(c1.eg - lot_.true_eg());
  const double c3_err = std::abs(c3.eg - lot_.true_eg());
  EXPECT_LT(c3_err, 0.5 * c1_err);
  EXPECT_LT(std::abs(c3.xti - lot_.true_xti()), 1.2);
}

TEST_F(PaperPipelineTest, ClassicalAndCellSensorExtractionsAgree) {
  // Paper: the C1 (best fit) and C2 (analytical, sensor temperatures)
  // characteristic straights correlate -- both carry the same thermal
  // corruption. Compare the EG each implies at the same fixed XTI.
  lab::CampaignConfig cfg;
  cfg.seed = 52;
  lab::Laboratory lab(lot_.sample(3), cfg);

  const auto pts = lab.vbe_vs_temperature(
      1e-6, {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0});
  extract::BestFitOptions opt;
  opt.t0 = 298.15;
  std::vector<double> grid{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto c1_line = extract::characteristic_straight(
      extract::samples_from_lab(pts), grid, opt);

  const auto sweep = lab.test_cell_sweep({-25.0, 25.0, 75.0});
  const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);
  const auto c2_line = extract::meijer_line(
      m.p1.t_sensor, m.p1.vbe_qa, m.p2.t_sensor, m.p2.vbe_qa, grid);
  const auto c3_line = extract::meijer_line(
      m.t1_computed, m.p1.vbe_qa, m.p2.t_sensor, m.p2.vbe_qa, grid);

  const double eg_c1_at3 = c1_line.couples.y(2);
  const double eg_c2_at3 = c2_line.y(2);
  const double eg_c3_at3 = c3_line.y(2);
  // C1 and C2 agree with each other far better than either agrees with C3.
  EXPECT_LT(std::abs(eg_c1_at3 - eg_c2_at3),
            0.5 * std::abs(eg_c1_at3 - eg_c3_at3));
  // And C3 at the true XTI is close to the true EG.
  const auto c3_at_true = extract::meijer_line(
      m.t1_computed, m.p1.vbe_qa, m.p2.t_sensor, m.p2.vbe_qa,
      {lot_.true_xti(), lot_.true_xti() + 1.0});
  EXPECT_NEAR(c3_at_true.y(0), lot_.true_eg(), 0.02);
}

TEST_F(PaperPipelineTest, Fig5SliceFeedsClassicalExtraction) {
  // Fig. 5 -> VBE(T) slices at constant IC -> best fit, the paper's full
  // classical chain, on ideal-thermal data for exactness.
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  lab::DieSample s = lot_.sample(0);
  s.qin.iss_e = 0.0;
  lab::Laboratory lab(s, cfg);
  std::vector<double> temps_c{-50.88, -25.47, -0.07, 27.36,
                              50.74,  76.13,  101.6, 126.9};
  const auto family = lab.icvbe_family(temps_c, 0.10, 0.95, 69);
  std::vector<double> temps_k;
  for (double tc : temps_c) temps_k.push_back(to_kelvin(tc));
  for (double ic : {1e-8, 1e-7, 1e-6, 1e-5}) {
    const auto samples =
        extract::vbe_vs_t_at_constant_ic(family, temps_k, ic);
    extract::BestFitOptions opt;
    opt.t0 = to_kelvin(27.36);
    const auto r = extract::best_fit_eg_xti(samples, opt);
    EXPECT_NEAR(r.eg, lot_.true_eg(), 0.03) << "ic=" << ic;
  }
}

TEST_F(PaperPipelineTest, VrefBellVersusMeasuredRise) {
  // Fig. 8's qualitative core: the clean model-card simulation bells with
  // a mid-range maximum, the measured cell rises into the hot end.
  lab::CampaignConfig clean_cfg;
  clean_cfg.ideal_instruments = true;
  clean_cfg.ideal_thermal = true;
  lab::DieSample clean = lot_.sample(1);
  clean.opamp_offset = 0.0;
  clean.qa.iss_e = clean.qb.iss_e = clean.qa.iss = clean.qb.iss = 0.0;
  // Canonical foundry card: XTI pinned at 3, EG on the silicon's line.
  clean.qa.xti = clean.qb.xti = 3.0;
  lab::Laboratory sim(clean, clean_cfg);

  std::vector<double> grid;
  for (double t = -55.0; t <= 125.0; t += 15.0) grid.push_back(t);
  const auto bell = sim.vref_curve(grid);
  const std::size_t apex = bell.nearest_index(bell.x(0));
  double max_v = bell.min_y();
  std::size_t arg = 0;
  for (std::size_t i = 0; i < bell.size(); ++i) {
    if (bell.y(i) > max_v) {
      max_v = bell.y(i);
      arg = i;
    }
  }
  (void)apex;
  // Bell: maximum strictly inside the range.
  EXPECT_GT(arg, 0u);
  EXPECT_LT(arg, bell.size() - 1);

  lab::CampaignConfig real_cfg;
  real_cfg.seed = 9;
  lab::Laboratory meas(lot_.sample(1), real_cfg);
  const auto measured = meas.vref_curve(grid);
  // Rise: hot end clearly above the cold end and above mid-range.
  EXPECT_GT(measured.y(measured.size() - 1), measured.y(0) + 3e-3);
}

TEST_F(PaperPipelineTest, RadjaTrimFlattensMeasuredCell) {
  // Fig. 8 S1 -> S4: increasing RadjA flattens the hot-end rise of the
  // parasitic-afflicted cell.
  lab::CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  lab::Laboratory lab(lot_.sample(1), cfg);
  std::vector<double> grid;
  for (double t = -55.0; t <= 125.0; t += 20.0) grid.push_back(t);
  const auto untrimmed = lab.vref_curve(grid, 0.0);
  const auto trimmed = lab.vref_curve(grid, 2.7e3);
  const double spread_untrimmed = untrimmed.max_y() - untrimmed.min_y();
  const double spread_trimmed = trimmed.max_y() - trimmed.min_y();
  EXPECT_LT(spread_trimmed, spread_untrimmed);
}

}  // namespace
}  // namespace icvbe
