// Tests for icvbe/bandgap: the programmable test cell.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/lab/silicon.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace icvbe::bandgap {
namespace {

/// Clean PNP (no parasitics) for ideal-behaviour checks.
spice::BjtModel clean_pnp() {
  spice::BjtModel m = lab::ProcessTruth::nominal().pnp;
  m.iss = 0.0;
  m.iss_e = 0.0;
  return m;
}

TestCellParams clean_params() {
  TestCellParams p;
  p.qa_model = clean_pnp();
  p.qb_model = clean_pnp();
  return p;
}

TEST(TestCell, RequiresPnpDevices) {
  TestCellParams p = clean_params();
  p.qa_model.type = spice::BjtModel::Type::kNpn;
  spice::Circuit c;
  EXPECT_THROW((void)build_test_cell(c, p), Error);
}

TEST(TestCell, RequiresAreaRatioAboveUnity) {
  TestCellParams p = clean_params();
  p.area_ratio = 1.0;  // paper: "that area ratio is more than unity"
  spice::Circuit c;
  EXPECT_THROW((void)build_test_cell(c, p), Error);
}

TEST(TestCell, ProducesBandgapVoltage) {
  TestCellParams p = clean_params();
  spice::Circuit c;
  auto h = build_test_cell(c, p);
  const CellObservation obs = solve_cell_at(c, h, 298.15);
  EXPECT_GT(obs.vref, 1.15);
  EXPECT_LT(obs.vref, 1.30);
}

TEST(TestCell, DeltaVbeIsPtatWithCleanDevices) {
  TestCellParams p = clean_params();
  spice::Circuit c;
  auto h = build_test_cell(c, p);
  for (double t : {248.15, 298.15, 348.15}) {
    const CellObservation obs = solve_cell_at(c, h, t);
    const double expected = physics::delta_vbe_ptat(t, p.area_ratio);
    // Within ~0.5 mV: base currents and Early effect perturb slightly.
    EXPECT_NEAR(obs.delta_vbe, expected, 6e-4) << "T=" << t;
  }
}

TEST(TestCell, EqualBranchCurrents) {
  // "Fixing the same potential through RX1 and RX2 imposes the equality
  // between the collector current of QA and QB."
  TestCellParams p = clean_params();
  spice::Circuit c;
  auto h = build_test_cell(c, p);
  const CellObservation obs = solve_cell_at(c, h, 298.15);
  EXPECT_NEAR(obs.ic_qa / obs.ic_qb, 1.0, 2e-2);
}

TEST(TestCell, MatchesIdealFirstOrderModel) {
  TestCellParams p = clean_params();
  spice::Circuit c;
  auto h = build_test_cell(c, p);
  const CellObservation at_t0 = solve_cell_at(c, h, 298.15);
  // Use the solved VBE(T0) to anchor the ideal model, then compare at a
  // different temperature.
  const double predicted =
      ideal_vref(p, 323.15, at_t0.vbe_qa, 298.15, p.qa_model.eg,
                 p.qa_model.xti);
  const CellObservation at_t1 = solve_cell_at(c, h, 323.15);
  EXPECT_NEAR(at_t1.vref, predicted, 5e-3);
}

TEST(TestCell, OpAmpOffsetShiftsVref) {
  TestCellParams p = clean_params();
  spice::Circuit c1, c2;
  auto h1 = build_test_cell(c1, p);
  p.opamp_offset = 3e-3;
  auto h2 = build_test_cell(c2, p);
  const double v1 = solve_cell_at(c1, h1, 298.15).vref;
  const double v2 = solve_cell_at(c2, h2, 298.15).vref;
  // The offset is amplified by roughly RX2/RB onto VREF.
  EXPECT_GT(std::abs(v2 - v1), 10e-3);
  EXPECT_LT(std::abs(v2 - v1), 60e-3);
}

TEST(TestCell, SubstrateParasiticInflatesDeltaVbeAtHot) {
  // QB's 8x emitter-junction parasitic steals an area-dependent fraction;
  // at high temperature dVBE grows beyond PTAT -- the section-6 nonlinear
  // component.
  TestCellParams clean = clean_params();
  TestCellParams dirty = clean_params();
  dirty.qa_model = lab::ProcessTruth::nominal().pnp;
  dirty.qb_model = dirty.qa_model;
  spice::Circuit cc, cd;
  auto hc = build_test_cell(cc, clean);
  auto hd = build_test_cell(cd, dirty);
  const double t_hot = 418.15;
  const double extra_hot = solve_cell_at(cd, hd, t_hot).delta_vbe -
                           solve_cell_at(cc, hc, t_hot).delta_vbe;
  const double t_cold = 258.15;
  const double extra_cold = solve_cell_at(cd, hd, t_cold).delta_vbe -
                            solve_cell_at(cc, hc, t_cold).delta_vbe;
  EXPECT_GT(extra_hot, 5e-4);           // > 0.5 mV inflation at 145 C
  EXPECT_LT(std::abs(extra_cold), 1e-4);  // negligible at -15 C
}

TEST(TestCell, RadjaTrimLowersHotEnd) {
  TestCellParams p = clean_params();
  p.qa_model = lab::ProcessTruth::nominal().pnp;
  p.qb_model = p.qa_model;
  spice::Circuit c;
  auto h = build_test_cell(c, p);
  auto& radja = c.get<spice::Resistor>(h.radja);

  const double hot = 418.15;
  radja.set_nominal_resistance(1e-6);
  const double v0 = solve_cell_at(c, h, hot).vref;
  radja.set_nominal_resistance(2.7e3);
  const double v27 = solve_cell_at(c, h, hot).vref;
  // The paper's S1 -> S4 sequence moves VREF down by several mV at the hot
  // end as RadjA increases.
  EXPECT_LT(v27, v0 - 2e-3);
  EXPECT_GT(v27, v0 - 40e-3);
}

TEST(TestCell, TrimSearchReducesSpread) {
  TestCellParams p = clean_params();
  p.qa_model = lab::ProcessTruth::nominal().pnp;
  p.qb_model = p.qa_model;
  spice::Circuit c;
  auto h = build_test_cell(c, p);
  std::vector<double> grid;
  for (double t = 233.15; t <= 418.15; t += 20.0) grid.push_back(t);

  // Untrimmed spread.
  auto& radja = c.get<spice::Resistor>(h.radja);
  radja.set_nominal_resistance(1e-6);
  double vmin = 1e9, vmax = -1e9;
  for (double t : grid) {
    const double v = solve_cell_at(c, h, t).vref;
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  const double untrimmed = vmax - vmin;

  const TrimResult best = trim_radja(c, h, grid, 3e3, 13);
  EXPECT_LE(best.vref_spread, untrimmed + 1e-12);
  EXPECT_GE(best.radja, 0.0);
  EXPECT_LE(best.radja, 3e3);
}

TEST(TestCell, SolvesAcrossFullMilitaryRange) {
  TestCellParams p = clean_params();
  p.qa_model = lab::ProcessTruth::nominal().pnp;
  p.qb_model = p.qa_model;
  p.opamp_offset = 2e-3;
  spice::Circuit c;
  auto h = build_test_cell(c, p);
  for (double t = 193.15; t <= 438.15; t += 12.25) {
    EXPECT_NO_THROW((void)solve_cell_at(c, h, t)) << "T=" << t;
  }
}

}  // namespace
}  // namespace icvbe::bandgap
