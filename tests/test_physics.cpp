// Tests for icvbe/physics: EG(T) models, carrier statistics, IS(T) laws and
// the eq. (12) identification, the VBE(T) closed form and Meijer identities.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/physics/carrier.hpp"
#include "icvbe/physics/eg_model.hpp"
#include "icvbe/physics/saturation_current.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace icvbe::physics {
namespace {

TEST(EgModels, PublishedZeroKelvinValues) {
  EXPECT_NEAR(make_eg2().eg(0.0), 1.1557, 1e-12);
  EXPECT_NEAR(make_eg3().eg(0.0), 1.170, 1e-12);
  EXPECT_NEAR(make_eg4().eg(0.0), 1.1663, 1e-12);
  EXPECT_NEAR(make_eg5().eg(0.0), 1.1774, 1e-12);
}

TEST(EgModels, ZeroKelvinSpreadIsPaperTwentyTwoMilliVolts) {
  // "The discrepancy between the EG5(0) and EG2(0) is about 22 mV."
  const double spread = make_eg5().eg(0.0) - make_eg2().eg(0.0);
  EXPECT_NEAR(spread, 0.0217, 5e-4);
}

TEST(EgModels, RoomTemperatureGapNear1p12) {
  // All credible Si models give ~1.11-1.13 eV at 300 K.
  const auto eg2 = make_eg2();
  const auto eg3 = make_eg3();
  const auto eg4 = make_eg4();
  const auto eg5 = make_eg5();
  for (const EgModel* m : {static_cast<const EgModel*>(&eg2),
                           static_cast<const EgModel*>(&eg3),
                           static_cast<const EgModel*>(&eg4),
                           static_cast<const EgModel*>(&eg5)}) {
    EXPECT_NEAR(m->eg(300.0), 1.12, 0.02) << m->name();
  }
}

TEST(EgModels, GapDecreasesWithTemperature) {
  const auto eg5 = make_eg5();
  double prev = eg5.eg(50.0);
  for (double t = 100.0; t <= 450.0; t += 50.0) {
    const double now = eg5.eg(t);
    EXPECT_LT(now, prev) << "at T=" << t;
    prev = now;
  }
}

TEST(EgModels, AnalyticDerivativeMatchesFiniteDifference) {
  const auto eg2 = make_eg2();
  const auto eg4 = make_eg4();
  const auto eg1 = make_eg1();
  for (const EgModel* m : {static_cast<const EgModel*>(&eg2),
                           static_cast<const EgModel*>(&eg4),
                           static_cast<const EgModel*>(&eg1)}) {
    for (double t : {100.0, 250.0, 400.0}) {
      const double h = 1e-3;
      const double fd = (m->eg(t + h) - m->eg(t - h)) / (2.0 * h);
      EXPECT_NEAR(m->deg_dt(t), fd, 1e-8) << m->name() << " at " << t;
    }
  }
}

TEST(EgModels, LinearisationIsTangentAtReference) {
  const double t_ref = 300.0;
  const auto eg1 = make_eg1(t_ref);
  const auto eg5 = make_eg5();
  EXPECT_NEAR(eg1.eg(t_ref), eg5.eg(t_ref), 1e-12);
  EXPECT_NEAR(eg1.deg_dt(t_ref), eg5.deg_dt(t_ref), 1e-12);
  // Away from the reference the tangent overestimates the gap at 0 K.
  EXPECT_GT(eg1.eg(0.0), eg5.eg(0.0));
}

TEST(EgModels, ExtrapolatedEg0ExceedsAllModelGaps) {
  // The Fig.-1 "EG0" marker sits above every model's true EG(0); with
  // bandgap narrowing the error reaches ~90 mV (paper section 2).
  const double eg0 = eg0_extrapolated(300.0);
  EXPECT_GT(eg0, make_eg5().eg(0.0));
  EXPECT_NEAR(eg0, 1.2, 0.02);  // classic 1.2 V extrapolation
  const double with_bgn = eg0 - (make_eg5().eg(0.0) - 0.045);
  EXPECT_NEAR(with_bgn, 0.09, 0.03);
}

TEST(EgModels, ClonePreservesBehaviour) {
  const auto eg4 = make_eg4();
  auto c = eg4.clone();
  EXPECT_DOUBLE_EQ(c->eg(321.0), eg4.eg(321.0));
  EXPECT_EQ(c->name(), eg4.name());
}

TEST(EgModels, InvalidConstructionRejected) {
  EXPECT_THROW(VarshniEgModel(-1.0, 1e-4, 600.0), Error);
  EXPECT_THROW(VarshniEgModel(1.1, 1e-4, -600.0), Error);
  EXPECT_THROW(LogEgModel(0.0, 1e-4, -1e-4), Error);
}

TEST(EgModels, PasslerMatchesThurmondInOperatingRange) {
  // Passler and the paper's preferred EG5 log model agree within a few
  // meV over the military range (they fit the same silicon data).
  const auto pass = make_passler_si();
  const auto eg5 = make_eg5();
  for (double t = 220.0; t <= 400.0; t += 20.0) {
    EXPECT_NEAR(pass.eg(t), eg5.eg(t), 6e-3) << "T=" << t;
  }
}

TEST(EgModels, PasslerDerivativeMatchesFiniteDifference) {
  const auto pass = make_passler_si();
  for (double t : {50.0, 150.0, 300.0, 420.0}) {
    const double h = 1e-3;
    const double fd = (pass.eg(t + h) - pass.eg(t - h)) / (2.0 * h);
    EXPECT_NEAR(pass.deg_dt(t), fd, 1e-8) << "T=" << t;
  }
}

TEST(EgModels, PasslerLowTemperatureFlatness) {
  // Unlike Varshni, Passler approaches 0 K with a vanishing slope.
  const auto pass = make_passler_si();
  EXPECT_NEAR(pass.eg(1.0), 1.1701, 1e-5);
  EXPECT_LT(std::abs(pass.deg_dt(5.0)), 1e-5);
}

TEST(Carrier, NiSquaredAnchoredAt300K) {
  const auto eg5 = make_eg5();
  EXPECT_NEAR(ni_squared(eg5, 300.0), kNi300 * kNi300,
              1e-6 * kNi300 * kNi300);
}

TEST(Carrier, NiSquaredIncreasesSteeplyWithT) {
  const auto eg5 = make_eg5();
  const double r = ni_squared(eg5, 400.0) / ni_squared(eg5, 300.0);
  // ni^2 grows by many decades over 100 K.
  EXPECT_GT(r, 1e4);
}

TEST(Carrier, NarrowingRaisesNie) {
  const auto eg5 = make_eg5();
  const double plain = nie_squared(eg5, 300.0, 0.0);
  const double narrowed = nie_squared(eg5, 300.0, 0.045);
  // exp(45 meV / 25.85 meV) ~ 5.7.
  EXPECT_NEAR(narrowed / plain, std::exp(0.045 / thermal_voltage(300.0)),
              1e-9);
}

TEST(Carrier, SlotboomMonotoneAboveOnset) {
  EXPECT_DOUBLE_EQ(slotboom_bandgap_narrowing(1e16), 0.0);
  const double d18 = slotboom_bandgap_narrowing(1e18);
  const double d19 = slotboom_bandgap_narrowing(1e19);
  EXPECT_GT(d18, 0.0);
  EXPECT_GT(d19, d18);
  // Heavy base/emitter doping around 1e18 gives the paper's ~45 meV scale.
  EXPECT_NEAR(d18, 0.045, 0.01);
}

TEST(Carrier, BaseTransportExponents) {
  BaseTransport bt;
  bt.dnb_t0 = 10.0;
  bt.en = 0.5;
  bt.erho = 0.2;
  bt.t0 = 300.0;
  EXPECT_NEAR(bt.dnb(600.0), 10.0 * std::pow(2.0, 0.5), 1e-12);
  EXPECT_NEAR(bt.gummel_number(600.0) / bt.gummel_t0, std::pow(2.0, 0.2),
              1e-12);
}

TEST(SpiceIs, ReferenceTemperatureIdentity) {
  EXPECT_DOUBLE_EQ(spice_is(1e-16, 1.17, 3.0, 300.0, 300.0), 1e-16);
}

TEST(SpiceIs, TwentyPercentPerKelvinSensitivity) {
  // Paper ref [12]: IS sensitivity ~20 %/K near room temperature.
  const double t = 300.0;
  const double is0 = spice_is(1e-16, 1.12, 3.0, t, 300.0);
  const double is1 = spice_is(1e-16, 1.12, 3.0, t + 1.0, 300.0);
  const double rel = (is1 - is0) / is0;
  EXPECT_GT(rel, 0.12);
  EXPECT_LT(rel, 0.25);
}

TEST(SpiceIs, LogFormMatchesLinearForm) {
  const double is = spice_is(2e-15, 1.15, 2.5, 350.0, 300.0);
  const double log_is = spice_log_is(std::log(2e-15), 1.15, 2.5, 350.0, 300.0);
  EXPECT_NEAR(std::log(is), log_is, 1e-12);
}

TEST(Identification, Eq12MatchesManualAlgebra) {
  // XTI = 4 - EN - Erho - b/k with b in eV/K.
  const auto p = identify_spice_params(1.1774, 0.045, 0.42, 0.11, -8.459e-5);
  EXPECT_NEAR(p.eg, 1.1324, 1e-10);
  EXPECT_NEAR(p.xti, 4.0 - 0.42 - 0.11 + 8.459e-5 / kBoltzmannEv, 1e-9);
}

TEST(GummelPoon, ClosedFormMatchesPhysicalEvaluation) {
  // The eq. (11) closed form must equal the eq. (2) evaluation built from
  // eqs. (3)-(6) -- that is the paper's whole derivation chain.
  BaseTransport bt;
  bt.en = 0.42;
  bt.erho = 0.11;
  bt.t0 = 300.0;
  GummelPoonIsModel model(make_eg5(), 0.045, bt, 48e-8);
  for (double t : {220.0, 260.0, 300.0, 340.0, 380.0, 420.0}) {
    const double direct = model.is(t) / model.is(300.0);
    const double closed = model.is_ratio_closed_form(t);
    EXPECT_NEAR(direct / closed, 1.0, 1e-9) << "T=" << t;
  }
}

TEST(GummelPoon, SpiceParamsRoundTripThroughEq1) {
  BaseTransport bt;
  bt.en = 0.42;
  bt.erho = 0.11;
  bt.t0 = 300.0;
  GummelPoonIsModel model(make_eg5(), 0.045, bt, 6e-8);
  const auto p = model.spice_params();
  for (double t : {250.0, 300.0, 350.0, 400.0}) {
    const double physical = model.is(t) / model.is(bt.t0);
    const double spice = spice_is(1.0, p.eg, p.xti, t, bt.t0);
    EXPECT_NEAR(physical / spice, 1.0, 1e-9) << "T=" << t;
  }
}

TEST(GummelPoon, RelativeSensitivityNearTwentyPercent) {
  BaseTransport bt;
  GummelPoonIsModel model(make_eg5(), 0.045, bt, 6e-8);
  const double s = model.relative_sensitivity(300.0);
  EXPECT_GT(s, 0.12);
  EXPECT_LT(s, 0.22);
}

TEST(VbeModel, ReferencePointIdentity) {
  VbeModelParams p;
  p.t0 = 298.15;
  p.vbe_t0 = 0.62;
  EXPECT_DOUBLE_EQ(vbe_of_t(p, p.t0), p.vbe_t0);
}

TEST(VbeModel, CtatSlopeAboutMinus1p8mVPerK) {
  VbeModelParams p;
  p.eg = 1.12;
  p.xti = 3.0;
  p.t0 = 300.0;
  p.vbe_t0 = 0.65;
  const double slope = dvbe_dt(p, 300.0);
  EXPECT_GT(slope, -2.4e-3);
  EXPECT_LT(slope, -1.4e-3);
}

TEST(VbeModel, AnalyticSlopeMatchesFiniteDifference) {
  VbeModelParams p;
  p.eg = 1.16;
  p.xti = 3.5;
  p.t0 = 298.15;
  p.vbe_t0 = 0.6;
  for (double t : {230.0, 298.15, 390.0}) {
    const double h = 1e-3;
    const double fd = (vbe_of_t(p, t + h) - vbe_of_t(p, t - h)) / (2.0 * h);
    EXPECT_NEAR(dvbe_dt(p, t), fd, 1e-9) << "T=" << t;
  }
}

TEST(VbeModel, ConsistentWithSpiceIsLaw) {
  // VBE(T) from the closed form must equal VT ln(IC/IS(T)) with IS(T) from
  // eq. (1) -- they are the same equation rearranged.
  const double eg = 1.14, xti = 3.2, t0 = 300.0;
  const double ic = 1e-6;
  const double is_t0 = 1e-16;
  const double vbe_t0 = thermal_voltage(t0) * std::log(ic / is_t0);
  VbeModelParams p{eg, xti, t0, vbe_t0};
  for (double t : {250.0, 275.0, 325.0, 375.0}) {
    const double is_t = spice_is(is_t0, eg, xti, t, t0);
    const double direct = thermal_voltage(t) * std::log(ic / is_t);
    EXPECT_NEAR(vbe_of_t(p, t), direct, 1e-12) << "T=" << t;
  }
}

TEST(VbeModel, CurrentRatioTermIsVtLog) {
  VbeModelParams p;
  const double t = 320.0;
  const double diff = vbe_of_t(p, t, 10.0) - vbe_of_t(p, t, 1.0);
  EXPECT_NEAR(diff, thermal_voltage(t) * std::log(10.0), 1e-12);
}

TEST(VbeModel, DeltaVbePtatExactness) {
  // dVBE for area ratio 8 at 297 K: (kT/q) ln 8 ~ 53.2 mV.
  EXPECT_NEAR(delta_vbe_ptat(297.0, 8.0), 0.0532, 5e-4);
  // PTAT: doubles with absolute temperature.
  EXPECT_NEAR(delta_vbe_ptat(600.0, 8.0), 2.0 * delta_vbe_ptat(300.0, 8.0),
              1e-15);
}

TEST(VbeModel, DeltaVbeGeneralReducesToPtat) {
  EXPECT_DOUBLE_EQ(delta_vbe_general(300.0, 8.0, 1e-6, 1e-6),
                   delta_vbe_ptat(300.0, 8.0));
  // Unequal currents shift by (kT/q) ln(icA/icB).
  const double d = delta_vbe_general(300.0, 8.0, 2e-6, 1e-6) -
                   delta_vbe_ptat(300.0, 8.0);
  EXPECT_NEAR(d, thermal_voltage(300.0) * std::log(2.0), 1e-12);
}

TEST(VbeModel, EarlyCorrectionSane) {
  EXPECT_DOUBLE_EQ(
      early_correction(std::numeric_limits<double>::infinity(), 0.6, 0.7),
      1.0);
  EXPECT_GT(early_correction(5.0, 0.6, 0.7), 1.0);
  EXPECT_LT(early_correction(5.0, 0.7, 0.6), 1.0);
  EXPECT_THROW((void)early_correction(0.5, 0.6, 0.7), Error);
}

TEST(MeijerIdentity, ExactOnSyntheticVbe) {
  // Build VBE(T) from known (EG, XTI); eq. (14) must hold exactly.
  VbeModelParams p;
  p.eg = 1.15;
  p.xti = 3.4;
  p.t0 = 297.0;
  p.vbe_t0 = 0.61;
  const double t1 = 247.0, t2 = 297.0;
  const auto eq = meijer_equation(t1, vbe_of_t(p, t1), t2, vbe_of_t(p, t2));
  EXPECT_NEAR(eq.lhs, p.eg * eq.coeff_eg + p.xti * eq.coeff_xti, 1e-10);
}

TEST(MeijerIdentity, RejectsDegeneratePair) {
  EXPECT_THROW((void)meijer_equation(300.0, 0.6, 300.0, 0.6), Error);
}

// Property sweep: the Meijer identity holds for every (EG, XTI) couple on a
// grid -- the algebra behind eqs. (14)-(15) has no approximation.
struct MeijerCase {
  double eg, xti;
};
class MeijerPropertyTest : public ::testing::TestWithParam<MeijerCase> {};

TEST_P(MeijerPropertyTest, IdentityHolds) {
  const auto [eg, xti] = GetParam();
  VbeModelParams p;
  p.eg = eg;
  p.xti = xti;
  p.t0 = 297.0;
  p.vbe_t0 = 0.6;
  for (double ta : {223.0, 247.0, 273.0}) {
    for (double tb : {297.0, 323.0, 348.0}) {
      const auto eq = meijer_equation(ta, vbe_of_t(p, ta), tb, vbe_of_t(p, tb));
      EXPECT_NEAR(eq.lhs, eg * eq.coeff_eg + xti * eq.coeff_xti, 1e-9)
          << "EG=" << eg << " XTI=" << xti << " (" << ta << "," << tb << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MeijerPropertyTest,
    ::testing::Values(MeijerCase{1.08, 1.0}, MeijerCase{1.12, 2.0},
                      MeijerCase{1.17, 3.0}, MeijerCase{1.21, 4.5},
                      MeijerCase{1.25, 6.0}));

}  // namespace
}  // namespace icvbe::physics
