// Property-style round-trip tests for the probe grammar and the deck
// analysis directives, with seeded random generation: parse_probe /
// Probe::to_string must invert each other structurally, and random
// .DC/.STEP/.PROBE fragments must parse into exactly the AnalysisPlan the
// directive text describes. Closes the parser coverage gaps test_netlist's
// hand-written cases leave (deep expression nesting, arbitrary constants,
// axis/grid combinations).

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/plan.hpp"

namespace icvbe::spice {
namespace {

// ------------------------------------------------ structural equality ---

void expect_same_probe(const Probe& a, const Probe& b,
                       const std::string& context) {
  ASSERT_EQ(static_cast<int>(a.kind()), static_cast<int>(b.kind()))
      << context;
  switch (a.kind()) {
    case Probe::Kind::kConstant:
      // format_double_roundtrip guarantees bit-exact value recovery.
      EXPECT_EQ(a.value(), b.value()) << context;
      break;
    case Probe::Kind::kNodeVoltage:
      EXPECT_EQ(a.target(), b.target()) << context;
      EXPECT_EQ(a.target2(), b.target2()) << context;
      break;
    case Probe::Kind::kBranchCurrent:
      EXPECT_EQ(a.target(), b.target()) << context;
      break;
    case Probe::Kind::kBjtCurrent:
      EXPECT_EQ(a.target(), b.target()) << context;
      EXPECT_EQ(static_cast<int>(a.terminal()),
                static_cast<int>(b.terminal()))
          << context;
      break;
    case Probe::Kind::kAcVoltage:
      EXPECT_EQ(a.target(), b.target()) << context;
      EXPECT_EQ(a.target2(), b.target2()) << context;
      EXPECT_EQ(static_cast<int>(a.ac_quantity()),
                static_cast<int>(b.ac_quantity()))
          << context;
      break;
    case Probe::Kind::kExpression:
      ASSERT_EQ(static_cast<int>(a.op()), static_cast<int>(b.op()))
          << context;
      expect_same_probe(a.lhs(), b.lhs(), context + " lhs");
      expect_same_probe(a.rhs(), b.rhs(), context + " rhs");
      break;
  }
}

// --------------------------------------------- random probe generation ---

class ProbeGen {
 public:
  explicit ProbeGen(unsigned seed) : gen_(seed) {}

  Probe random_probe(int depth = 0) {
    // Bias towards leaves as the tree deepens; cap at depth 4.
    const int kind = pick(depth >= 4 ? 4 : 6);
    switch (kind) {
      case 0:
        return Probe::node_voltage(name(),
                                   pick(3) == 0 ? name() : std::string());
      case 1:
        return Probe::branch_current(name());
      case 2:
        return Probe::constant(constant_value());
      case 3:
        return Probe::ac_voltage(ac_quantity(), name(),
                                 pick(2) == 0 ? name() : std::string());
      case 4:
        return Probe::bjt_current(name(), terminal());
      default:
        return Probe::expression(op(), random_probe(depth + 1),
                                 random_probe(depth + 1));
    }
  }

 private:
  int pick(int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(gen_);
  }

  std::string name() {
    static const char* kNames[] = {"out", "in", "mid", "n42", "vref",
                                   "Q1",  "V1", "R2",  "node_7"};
    return kNames[pick(static_cast<int>(std::size(kNames)))];
  }

  double constant_value() {
    const double mant =
        std::uniform_real_distribution<double>(0.1, 10.0)(gen_);
    const int exp = pick(25) - 12;
    double v = mant * std::pow(10.0, exp);
    if (pick(2) == 0) v = -v;
    return v;
  }

  Probe::BjtTerminal terminal() {
    switch (pick(4)) {
      case 0: return Probe::BjtTerminal::kCollector;
      case 1: return Probe::BjtTerminal::kBase;
      case 2: return Probe::BjtTerminal::kEmitter;
      default: return Probe::BjtTerminal::kSubstrate;
    }
  }

  Probe::AcQuantity ac_quantity() {
    switch (pick(5)) {
      case 0: return Probe::AcQuantity::kMagnitude;
      case 1: return Probe::AcQuantity::kDb;
      case 2: return Probe::AcQuantity::kPhaseDeg;
      case 3: return Probe::AcQuantity::kReal;
      default: return Probe::AcQuantity::kImag;
    }
  }

  Probe::Op op() {
    switch (pick(4)) {
      case 0: return Probe::Op::kAdd;
      case 1: return Probe::Op::kSub;
      case 2: return Probe::Op::kMul;
      default: return Probe::Op::kDiv;
    }
  }

  std::mt19937 gen_;
};

class ProbeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProbeRoundTrip, RandomProbesSurviveToStringParse) {
  ProbeGen gen(static_cast<unsigned>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const Probe original = gen.random_probe();
    const std::string text = original.to_string();
    SCOPED_TRACE(text);
    Probe reparsed;
    ASSERT_NO_THROW(reparsed = parse_probe(text));
    expect_same_probe(original, reparsed, text);
    // Serialisation is a fixed point: one round trip reaches it.
    EXPECT_EQ(reparsed.to_string(), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeRoundTrip,
                         ::testing::Values(11, 22, 33, 44));

TEST(ProbeRoundTripEdge, WhitespaceAndPrecedence) {
  const Probe p = parse_probe(" V(a) + V(b) * IC(Q1) ");
  ASSERT_EQ(p.kind(), Probe::Kind::kExpression);
  EXPECT_EQ(p.op(), Probe::Op::kAdd);
  EXPECT_EQ(p.rhs().op(), Probe::Op::kMul);
  expect_same_probe(p, parse_probe(p.to_string()), "precedence");
}

TEST(ProbeRoundTripEdge, DifferentialVoltagePairRoundTrips) {
  // V(a,b) is one typed differential pair (so the AC domain can read the
  // differential phasor); it serialises back to exactly "V(a,b)".
  const Probe p = parse_probe("V(a,b)");
  EXPECT_EQ(p.kind(), Probe::Kind::kNodeVoltage);
  EXPECT_EQ(p.target2(), "b");
  const std::string text = p.to_string();
  EXPECT_EQ(text, "V(a,b)");
  expect_same_probe(p, parse_probe(text), text);
  EXPECT_EQ(parse_probe(text).to_string(), text);
}

// ----------------------------------------- deck directive round trips ---

/// Mirror of the parser's .DC/.STEP linear stepping rule.
std::vector<double> mirrored_steps(double start, double stop, double incr) {
  const double eps = 1e-9 * std::abs(incr);
  std::vector<double> values;
  for (int i = 0;; ++i) {
    const double v = start + incr * static_cast<double>(i);
    if (incr > 0.0 ? v > stop + eps : v < stop - eps) break;
    values.push_back(v);
  }
  return values;
}

/// Quarter-steps print as short exact decimals ("3.75"), so the deck text
/// parses back to bit-identical doubles and grids compare with EQ.
std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

constexpr const char* kBaseDeck =
    "V1 in 0 5\n"
    "I1 0 mid 1m\n"
    "R1 in mid 2k\n"
    "R2 mid out 1k\n"
    "R3 out 0 3k\n";

struct AxisSpec {
  std::string target;        // V1, I1, R2, or TEMP
  std::vector<double> grid;  // expected materialised points
  std::string directive;     // the deck text that requests it
};

class DeckAxisGen {
 public:
  explicit DeckAxisGen(unsigned seed) : gen_(seed) {}

  /// A random linear spec usable inside .DC or .STEP.
  AxisSpec linear(const std::string& target) {
    const double start = 0.25 * pick(1, 8);
    const double incr = 0.25 * pick(1, 4);
    const double stop = start + incr * pick(2, 9);
    AxisSpec s;
    s.target = target;
    s.grid = mirrored_steps(start, stop, incr);
    s.directive =
        target + " " + fmt(start) + " " + fmt(stop) + " " + fmt(incr);
    return s;
  }

  AxisSpec list(const std::string& target) {
    AxisSpec s;
    s.target = target;
    const int n = pick(1, 5);
    std::string text = target + " LIST";
    for (int i = 0; i < n; ++i) {
      const double v = 0.25 * pick(1, 40);
      s.grid.push_back(v);
      text += " " + fmt(v);
    }
    s.directive = std::move(text);
    return s;
  }

  AxisSpec dec(const std::string& target) {
    const double first = 0.25 * pick(1, 4);
    const double last = first * std::pow(10.0, pick(1, 3));
    const int per_decade = pick(1, 5);
    AxisSpec s;
    s.target = target;
    s.grid = SweepGrid::log_decades(first, last, per_decade).points();
    s.directive = target + " DEC " + fmt(first) + " " + fmt(last) + " " +
                  std::to_string(per_decade);
    return s;
  }

  int pick(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }

 private:
  std::mt19937 gen_;
};

void expect_axis(const SweepAxis& axis, const AxisSpec& spec) {
  EXPECT_EQ(axis.label(), spec.target);
  if (spec.target == "TEMP") {
    EXPECT_EQ(axis.kind(), SweepAxis::Kind::kTemperature);
    EXPECT_TRUE(axis.celsius());
  } else if (spec.target[0] == 'V') {
    EXPECT_EQ(axis.kind(), SweepAxis::Kind::kVsource);
  } else if (spec.target[0] == 'I') {
    EXPECT_EQ(axis.kind(), SweepAxis::Kind::kIsource);
  } else {
    EXPECT_EQ(axis.kind(), SweepAxis::Kind::kResistor);
  }
  const std::vector<double> points = axis.grid().points();
  ASSERT_EQ(points.size(), spec.grid.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i], spec.grid[i]) << "grid point " << i;
  }
}

class DeckRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DeckRoundTrip, RandomAnalysisFragmentsParseToTheirPlan) {
  DeckAxisGen axes(static_cast<unsigned>(GetParam()));
  ProbeGen probes(static_cast<unsigned>(GetParam()) * 7 + 1);
  const std::vector<std::string> targets = {"V1", "I1", "R2", "TEMP"};

  for (int iter = 0; iter < 60; ++iter) {
    // Shape: 1-spec .DC | 2-spec .DC | .DC plus .STEP (outer).
    const int shape = axes.pick(0, 2);
    std::vector<std::string> pool = targets;
    auto take_target = [&]() {
      const std::size_t i =
          static_cast<std::size_t>(axes.pick(0, static_cast<int>(pool.size()) - 1));
      std::string t = pool[i];
      pool.erase(pool.begin() + static_cast<long>(i));
      return t;
    };

    const AxisSpec inner = axes.linear(take_target());
    std::string deck = kBaseDeck;
    std::vector<const AxisSpec*> expected;  // outer first, like plan.axes
    AxisSpec second;
    if (shape == 0) {
      deck += ".DC " + inner.directive + "\n";
      expected = {&inner};
    } else if (shape == 1) {
      second = axes.linear(take_target());
      deck += ".DC " + inner.directive + " " + second.directive + "\n";
      expected = {&second, &inner};  // first .DC spec is the innermost
    } else {
      const int form = axes.pick(0, 2);
      const std::string t = take_target();
      second = form == 0 ? axes.linear(t)
                         : (form == 1 ? axes.list(t) : axes.dec(t));
      deck += ".DC " + inner.directive + "\n";
      deck += ".STEP " + second.directive + "\n";
      expected = {&second, &inner};  // .STEP is always the outer axis
    }

    std::vector<Probe> want_probes;
    std::string probe_line = ".PROBE";
    const int n_probes = axes.pick(1, 3);
    for (int p = 0; p < n_probes; ++p) {
      want_probes.push_back(probes.random_probe(3));
      probe_line += ' ';
      probe_line += want_probes.back().to_string();
    }
    deck += probe_line + "\n.END\n";
    SCOPED_TRACE(deck);

    ParsedNetlist parsed;
    ASSERT_NO_THROW(parsed = parse_netlist(deck));
    ASSERT_TRUE(parsed.plan.has_value());
    const AnalysisPlan& plan = *parsed.plan;
    ASSERT_EQ(plan.axes.size(), expected.size());
    for (std::size_t a = 0; a < expected.size(); ++a) {
      expect_axis(plan.axes[a], *expected[a]);
    }
    ASSERT_EQ(plan.probes.size(), want_probes.size());
    for (std::size_t p = 0; p < want_probes.size(); ++p) {
      expect_same_probe(plan.probes[p], want_probes[p],
                        want_probes[p].to_string());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeckRoundTrip, ::testing::Values(5, 6, 7));

// ------------------------------------------- .AC directive round trips ---

class AcDeckRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(AcDeckRoundTrip, RandomAcFragmentsParseToTheirPlan) {
  DeckAxisGen gen(static_cast<unsigned>(GetParam()));
  ProbeGen probes(static_cast<unsigned>(GetParam()) * 13 + 5);

  const struct {
    const char* keyword;
    AcSpec::Spacing spacing;
  } forms[] = {
      {"DEC", AcSpec::Spacing::kDecade},
      {"OCT", AcSpec::Spacing::kOctave},
      {"LIN", AcSpec::Spacing::kLinear},
  };

  for (int iter = 0; iter < 40; ++iter) {
    const auto& form = forms[gen.pick(0, 2)];
    AcSpec want;
    want.spacing = form.spacing;
    want.points = form.spacing == AcSpec::Spacing::kLinear ? gen.pick(2, 40)
                                                          : gen.pick(1, 12);
    want.fstart = 0.25 * gen.pick(1, 40);
    want.fstop = want.fstart * gen.pick(2, 1000);

    // AC-domain probes only: what a real .AC deck carries.
    std::vector<Probe> want_probes;
    std::string probe_line = ".PROBE";
    const int n_probes = gen.pick(1, 3);
    for (int p = 0; p < n_probes; ++p) {
      want_probes.push_back(
          Probe::ac_voltage(Probe::AcQuantity::kDb, "out",
                            p % 2 == 0 ? std::string() : "in"));
      // Mix in one arbitrary expression probe for grammar coverage.
      if (p == 0) want_probes.back() = probes.random_probe(3);
      probe_line += ' ';
      probe_line += want_probes.back().to_string();
    }

    std::string deck = kBaseDeck;
    deck += ".AC " + std::string(form.keyword) + " " +
            std::to_string(want.points) + " " + fmt(want.fstart) + " " +
            fmt(want.fstop) + "\n";
    deck += probe_line + "\n.END\n";
    SCOPED_TRACE(deck);

    ParsedNetlist parsed;
    ASSERT_NO_THROW(parsed = parse_netlist(deck));
    ASSERT_TRUE(parsed.plan.has_value());
    const AnalysisPlan& plan = *parsed.plan;
    EXPECT_TRUE(plan.axes.empty());
    ASSERT_TRUE(plan.ac.has_value());
    EXPECT_EQ(static_cast<int>(plan.ac->spacing),
              static_cast<int>(want.spacing));
    EXPECT_EQ(plan.ac->points, want.points);
    EXPECT_EQ(plan.ac->fstart, want.fstart);
    EXPECT_EQ(plan.ac->fstop, want.fstop);
    // The materialised grids agree point for point.
    const std::vector<double> got_f = plan.ac->frequencies();
    const std::vector<double> want_f = want.frequencies();
    ASSERT_EQ(got_f.size(), want_f.size());
    for (std::size_t i = 0; i < got_f.size(); ++i) {
      EXPECT_EQ(got_f[i], want_f[i]) << "frequency " << i;
    }
    ASSERT_EQ(plan.probes.size(), want_probes.size());
    for (std::size_t p = 0; p < want_probes.size(); ++p) {
      expect_same_probe(plan.probes[p], want_probes[p],
                        want_probes[p].to_string());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcDeckRoundTrip, ::testing::Values(3, 9));

}  // namespace
}  // namespace icvbe::spice
