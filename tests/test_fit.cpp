// Tests for icvbe/fit: linear least squares, polynomial fit, LM.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "icvbe/common/error.hpp"
#include "icvbe/fit/least_squares.hpp"
#include "icvbe/fit/levenberg_marquardt.hpp"

namespace icvbe::fit {
namespace {

TEST(LinearLeastSquares, ExactLineRecovered) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0, 4.0};
  std::vector<double> y;
  for (double xi : x) y.push_back(3.0 - 2.0 * xi);
  LineFit f = fit_line(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-12);
  EXPECT_NEAR(f.slope, -2.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearLeastSquares, NoisyLineWithinSigma) {
  std::mt19937 gen(99);
  std::normal_distribution<double> noise(0.0, 0.01);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = i * 0.05;
    x.push_back(xi);
    y.push_back(1.5 + 0.7 * xi + noise(gen));
  }
  LineFit f = fit_line(x, y);
  EXPECT_NEAR(f.intercept, 1.5, 5.0 * f.sigma_intercept);
  EXPECT_NEAR(f.slope, 0.7, 5.0 * f.sigma_slope);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(LinearLeastSquares, ResidualStatsConsistent) {
  linalg::Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}};
  linalg::Vector y{0.0, 1.1, 1.9};
  LinearFitResult r = linear_least_squares(a, y);
  double rss = 0.0;
  for (double e : r.residuals) rss += e * e;
  EXPECT_NEAR(r.rss, rss, 1e-15);
  EXPECT_GT(r.r_squared, 0.9);
}

TEST(LinearLeastSquares, CorrelationDetectsCollinearBasis) {
  // Two nearly identical basis columns: parameter correlation -> -1.
  std::vector<double> x;
  for (int i = 0; i < 50; ++i) x.push_back(1.0 + i * 0.01);
  linalg::Matrix a(x.size(), 2);
  linalg::Vector y(x.size());
  std::mt19937 gen(7);
  std::normal_distribution<double> noise(0.0, 1e-4);
  for (std::size_t i = 0; i < x.size(); ++i) {
    a(i, 0) = x[i];
    a(i, 1) = x[i] * (1.0 + 1e-3 * std::log(x[i]));
    y[i] = a(i, 0) + a(i, 1) + noise(gen);
  }
  LinearFitResult r = linear_least_squares(a, y);
  EXPECT_LT(r.param_correlation(0, 1), -0.99);
  EXPECT_GT(r.condition_number, 1e4);
}

TEST(WeightedLeastSquares, DownweightsOutlier) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  linalg::Matrix a(4, 1);
  for (std::size_t i = 0; i < 4; ++i) a(i, 0) = 1.0;
  linalg::Vector y{1.0, 1.0, 1.0, 100.0};
  linalg::Vector w{1.0, 1.0, 1.0, 1e-9};
  LinearFitResult r = weighted_linear_least_squares(a, y, w);
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-3);
  EXPECT_THROW(
      (void)weighted_linear_least_squares(a, y, linalg::Vector{1, 1, 1, 0}),
      Error);
}

TEST(PolynomialFit, RecoversCubicExactly) {
  std::vector<double> x, y;
  for (int i = -5; i <= 5; ++i) {
    const double xi = i * 0.3;
    x.push_back(xi);
    y.push_back(1.0 - 2.0 * xi + 0.5 * xi * xi + 0.25 * xi * xi * xi);
  }
  LinearFitResult r = polynomial_fit(x, y, 3);
  EXPECT_NEAR(r.parameters[0], 1.0, 1e-10);
  EXPECT_NEAR(r.parameters[1], -2.0, 1e-10);
  EXPECT_NEAR(r.parameters[2], 0.5, 1e-10);
  EXPECT_NEAR(r.parameters[3], 0.25, 1e-10);
}

TEST(PolynomialFit, PolyvalHorner) {
  linalg::Vector c{1.0, 0.0, 2.0};  // 1 + 2x^2
  EXPECT_DOUBLE_EQ(polyval(c, 3.0), 19.0);
}

TEST(DesignMatrix, BuildsFromBasisFunctions) {
  std::vector<double> x{1.0, 2.0};
  auto a = design_matrix(
      x, {[](double) { return 1.0; }, [](double v) { return v * v; }});
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
}

TEST(LevenbergMarquardt, ExponentialDecayFit) {
  // y = A exp(-k x) with A = 2, k = 1.3.
  std::vector<double> xs, ys;
  for (int i = 0; i < 40; ++i) {
    const double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(2.0 * std::exp(-1.3 * x));
  }
  ResidualFn res = [&](const linalg::Vector& p, linalg::Vector& r) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] * std::exp(-p[1] * xs[i]) - ys[i];
    }
  };
  LmResult out = levenberg_marquardt(res, xs.size(), {1.0, 0.5});
  EXPECT_TRUE(out.converged) << out.stop_reason;
  EXPECT_NEAR(out.parameters[0], 2.0, 1e-6);
  EXPECT_NEAR(out.parameters[1], 1.3, 1e-6);
  EXPECT_LT(out.cost, 1e-12);
}

TEST(LevenbergMarquardt, RosenbrockConverges) {
  // Classic banana valley as residuals: r1 = 10(y - x^2), r2 = 1 - x.
  ResidualFn res = [](const linalg::Vector& p, linalg::Vector& r) {
    r[0] = 10.0 * (p[1] - p[0] * p[0]);
    r[1] = 1.0 - p[0];
  };
  LmResult out = levenberg_marquardt(res, 2, {-1.2, 1.0});
  EXPECT_TRUE(out.converged) << out.stop_reason;
  EXPECT_NEAR(out.parameters[0], 1.0, 1e-5);
  EXPECT_NEAR(out.parameters[1], 1.0, 1e-5);
}

TEST(LevenbergMarquardt, AnalyticJacobianMatchesNumeric) {
  std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 * x + 1.0);
  ResidualFn res = [&](const linalg::Vector& p, linalg::Vector& r) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] + p[1] * xs[i] - ys[i];
    }
  };
  JacobianFn jac = [&](const linalg::Vector&, linalg::Matrix& j) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      j(i, 0) = 1.0;
      j(i, 1) = xs[i];
    }
  };
  LmResult with_jac = levenberg_marquardt(res, xs.size(), {0.0, 0.0}, {}, jac);
  LmResult without = levenberg_marquardt(res, xs.size(), {0.0, 0.0});
  EXPECT_TRUE(with_jac.converged);
  EXPECT_NEAR(with_jac.parameters[0], without.parameters[0], 1e-8);
  EXPECT_NEAR(with_jac.parameters[1], without.parameters[1], 1e-8);
}

TEST(LevenbergMarquardt, RejectsUnderdetermined) {
  ResidualFn res = [](const linalg::Vector&, linalg::Vector& r) {
    r[0] = 0.0;
  };
  EXPECT_THROW((void)levenberg_marquardt(res, 1, {1.0, 2.0}), Error);
}

TEST(LevenbergMarquardt, CovarianceScalesWithNoise) {
  std::mt19937 gen(3);
  std::normal_distribution<double> noise(0.0, 0.05);
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(2.0 * xs.back() + noise(gen));
  }
  ResidualFn res = [&](const linalg::Vector& p, linalg::Vector& r) {
    for (std::size_t i = 0; i < xs.size(); ++i) r[i] = p[0] * xs[i] - ys[i];
  };
  LmResult out = levenberg_marquardt(res, xs.size(), {1.0});
  EXPECT_TRUE(out.converged);
  // Parameter sigma should be small but nonzero, consistent with the noise.
  const double sigma = std::sqrt(out.covariance(0, 0));
  EXPECT_GT(sigma, 1e-4);
  EXPECT_LT(sigma, 1e-1);
  EXPECT_NEAR(out.parameters[0], 2.0, 5.0 * sigma);
}

// Parameterised property: polynomial_fit of degree d reproduces any
// polynomial of that degree from exact samples.
class PolyDegreeTest : public ::testing::TestWithParam<int> {};

TEST_P(PolyDegreeTest, ExactRecovery) {
  const int degree = GetParam();
  std::mt19937 gen(static_cast<unsigned>(100 + degree));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  linalg::Vector coeffs(static_cast<std::size_t>(degree) + 1);
  for (auto& c : coeffs) c = dist(gen);
  std::vector<double> x, y;
  for (int i = 0; i <= 2 * degree + 4; ++i) {
    const double xi = -1.0 + 2.0 * i / (2.0 * degree + 4.0);
    x.push_back(xi);
    y.push_back(polyval(coeffs, xi));
  }
  LinearFitResult r = polynomial_fit(x, y, degree);
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    EXPECT_NEAR(r.parameters[j], coeffs[j], 1e-8) << "degree " << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyDegreeTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace icvbe::fit
