// Tests for icvbe/linalg: Matrix, LU, QR, solve2x2.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "icvbe/common/error.hpp"
#include "icvbe/linalg/matrix.hpp"
#include "icvbe/linalg/solve.hpp"

namespace icvbe::linalg {
namespace {

TEST(MatrixTest, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((void)m.at(2, 0), Error);
}

TEST(MatrixTest, RaggedInitializerRejected) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(MatrixTest, MultiplyMatrixAndVector) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);

  Vector v = a.multiply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, TransposeIdentityMaxAbs) {
  Matrix a{{1.0, -5.0}, {2.0, 3.0}};
  Matrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
  Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 2), 0.0);
}

TEST(VectorOps, NormsDotAxpy) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  Vector c = axpy(a, 2.0, Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
  EXPECT_THROW((void)dot(a, Vector{1.0}), Error);
}

TEST(LuTest, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector x = lu_solve(a, Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuTest, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap; solution is x = (1, 1).
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  Vector x = lu_solve(a, Vector{1.0, 1.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], 1.0, 1e-14);
}

TEST(LuTest, SingularMatrixThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuFactorization{a}, NumericalError);
}

TEST(LuTest, DeterminantWithPermutationSign) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  LuFactorization lu(a);
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-14);
}

TEST(LuTest, SolveManyRhsAfterOneFactor) {
  Matrix a{{4.0, 1.0, 0.0}, {1.0, 4.0, 1.0}, {0.0, 1.0, 4.0}};
  LuFactorization lu(a);
  for (int k = 0; k < 3; ++k) {
    Vector e(3, 0.0);
    e[static_cast<std::size_t>(k)] = 1.0;
    Vector x = lu.solve(e);
    Vector ax = a.multiply(x);
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(ax[static_cast<std::size_t>(i)],
                  e[static_cast<std::size_t>(i)], 1e-12);
    }
  }
}

TEST(LuTest, RefactorDetectsExactZeroPivotAtDenormalScale) {
  // Regression: with every entry ~1e-310, pivot_tol * max|A| underflows
  // to exactly 0.0, so the old `best < tol` test accepted the exactly
  // singular matrix and the first solve quietly divided 0/0. Detection
  // must be deterministic at refactor time.
  Matrix good{{2.0, 1.0}, {1.0, 3.0}};
  Matrix denormal_singular{{1e-310, 1e-310}, {1e-310, 1e-310}};
  LuFactorization lu(good);
  EXPECT_THROW(lu.refactor(denormal_singular), NumericalError);
}

TEST(LuTest, RefactorRejectsNonFiniteEntries) {
  // A NaN loses every pivot comparison (and max_abs skips it), so it used
  // to factor "successfully" and only surface as NaN in the first solve.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(LuFactorization(Matrix{{nan, 1.0}, {1.0, 1.0}}),
               NumericalError);
  EXPECT_THROW(LuFactorization(Matrix{{1.0, inf}, {1.0, 1.0}}),
               NumericalError);
  // Off-pivot NaN: the pivots themselves stay clean, the solution would
  // not have.
  EXPECT_THROW(LuFactorization(Matrix{{2.0, nan}, {0.0, 1.0}}),
               NumericalError);
}

TEST(LuTest, ZeroMatrixIsANumericalError) {
  // A numerically zero Jacobian must surface as NumericalError so the
  // Newton fallback machinery (which catches exactly that) handles it as
  // a convergence failure rather than aborting the run.
  EXPECT_THROW(LuFactorization(Matrix(2, 2, 0.0)), NumericalError);
}

TEST(LuTest, WorkspaceSurvivesASingularRefactor) {
  // A refactor() that throws must leave the workspace reusable: the
  // SimSession Newton loop catches the error, falls back (gmin/source
  // stepping), and refactors the same instance again.
  Matrix good{{2.0, 1.0}, {1.0, 3.0}};
  Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  LuFactorization lu;
  lu.refactor(good);
  EXPECT_THROW(lu.refactor(singular), NumericalError);
  lu.refactor(good);
  Vector x = lu.solve(Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuTest, ConditionEstimateLargeForNearSingular) {
  Matrix good{{1.0, 0.0}, {0.0, 1.0}};
  Matrix bad{{1.0, 1.0}, {1.0, 1.0 + 1e-9}};
  EXPECT_LT(LuFactorization(good).condition_estimate(), 10.0);
  EXPECT_GT(LuFactorization(bad).condition_estimate(), 1e6);
}

TEST(QrTest, ExactSolveSquare) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector x = qr_least_squares(a, Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(QrTest, OverdeterminedLeastSquares) {
  // y = 2x + 1 with exact data: residual must vanish.
  Matrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  Vector y{1.0, 3.0, 5.0, 7.0};
  Vector x = qr_least_squares(a, y);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(QrTest, LeastSquaresMinimisesResidual) {
  // Inconsistent system: projection of b onto col(A).
  Matrix a{{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  Vector y{1.0, 3.0, 5.0};
  Vector x = qr_least_squares(a, y);
  EXPECT_NEAR(x[0], 2.0, 1e-12);  // mean of 1 and 3
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(QrTest, RankDeficientThrows) {
  Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  QrFactorization qr(a);
  EXPECT_THROW((void)qr.solve_least_squares(Vector{1.0, 2.0, 3.0}),
               NumericalError);
}

TEST(QrTest, RDiagonalReflectsConditioning) {
  // Nearly collinear columns give a tiny trailing R diagonal -- exactly the
  // mechanism behind the paper's EG/XTI correlation.
  Matrix a{{1.0, 1.0}, {1.0, 1.0 + 1e-8}, {1.0, 1.0 + 2e-8}};
  QrFactorization qr(a);
  Vector d = qr.r_diagonal();
  EXPECT_GT(std::abs(d[0]), 1.0);
  EXPECT_LT(std::abs(d[1]) / std::abs(d[0]), 1e-7);
}

TEST(Solve2x2Test, SolvesAndValidates) {
  auto [x, y] = solve2x2(2.0, 1.0, 1.0, 3.0, 3.0, 5.0);
  EXPECT_NEAR(x, 0.8, 1e-12);
  EXPECT_NEAR(y, 1.4, 1e-12);
  EXPECT_THROW((void)solve2x2(1.0, 2.0, 2.0, 4.0, 1.0, 2.0), NumericalError);
}

// Property-style sweep: random well-conditioned systems solve to machine
// precision through both LU and QR.
class RandomSystemTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSystemTest, LuAndQrAgree) {
  const int n = 5;
  std::mt19937 gen(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) = dist(gen);
    }
    a(static_cast<std::size_t>(r), static_cast<std::size_t>(r)) += 4.0;
  }
  Vector b(n);
  for (int i = 0; i < n; ++i) b[static_cast<std::size_t>(i)] = dist(gen);
  Vector xl = lu_solve(a, b);
  Vector xq = qr_least_squares(a, b);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(xl[static_cast<std::size_t>(i)],
                xq[static_cast<std::size_t>(i)], 1e-10);
  }
  Vector ax = a.multiply(xl);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystemTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace icvbe::linalg
