// Tests for icvbe/extract: the paper's two extraction methods, dataset
// slicing, and error propagation.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/extract/sensitivity.hpp"
#include "icvbe/physics/saturation_current.hpp"
#include "icvbe/physics/vbe_model.hpp"

namespace icvbe::extract {
namespace {

/// Synthesize an exact eq.-(13) dataset.
std::vector<VbeSample> synth(double eg, double xti, double t0, double vbe_t0,
                             std::initializer_list<double> temps) {
  physics::VbeModelParams p{eg, xti, t0, vbe_t0};
  std::vector<VbeSample> out;
  for (double t : temps) out.push_back({t, physics::vbe_of_t(p, t)});
  return out;
}

const std::initializer_list<double> kTemps = {222.3, 247.7, 273.1, 300.5,
                                              323.9, 349.3, 374.8, 400.1};

TEST(BestFit, RecoversExactParameters) {
  const auto data = synth(1.17, 3.42, 298.15, 0.62, kTemps);
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.0;  // interpolated
  const EgXtiResult r = best_fit_eg_xti(data, opt);
  EXPECT_NEAR(r.eg, 1.17, 2e-3);
  EXPECT_NEAR(r.xti, 3.42, 0.1);
  EXPECT_LT(r.rmse, 1e-4);
}

TEST(BestFit, ExactWithKnownVbeT0) {
  const auto data = synth(1.12, 2.8, 298.15, 0.655, kTemps);
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.655;
  const EgXtiResult r = best_fit_eg_xti(data, opt);
  EXPECT_NEAR(r.eg, 1.12, 1e-9);
  EXPECT_NEAR(r.xti, 2.8, 1e-6);
}

TEST(BestFit, ParametersAreStronglyAnticorrelated) {
  // The heart of the paper: EG and XTI cannot be extracted separately.
  const auto data = synth(1.17, 3.0, 298.15, 0.62, kTemps);
  BestFitOptions opt;
  opt.t0 = 298.15;
  const EgXtiResult r = best_fit_eg_xti(data, opt);
  EXPECT_LT(r.correlation, -0.98);
  EXPECT_GT(r.condition, 1e3);
}

TEST(BestFit, ValidationErrors) {
  BestFitOptions opt;
  std::vector<VbeSample> two = {{250.0, 0.7}, {300.0, 0.65}};
  EXPECT_THROW((void)best_fit_eg_xti(two, opt), Error);
  std::vector<VbeSample> flat = {{300.0, 0.7}, {300.2, 0.7}, {300.4, 0.7}};
  EXPECT_THROW((void)best_fit_eg_xti(flat, opt), Error);
}

TEST(BestFit, EgGivenXtiIsExactOnSyntheticData) {
  const auto data = synth(1.155, 3.7, 298.15, 0.60, kTemps);
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.60;
  EXPECT_NEAR(best_fit_eg_given_xti(data, 3.7, opt), 1.155, 1e-9);
}

TEST(CharacteristicStraightTest, IsStraightWithTheorySlope) {
  const auto data = synth(1.17, 3.0, 298.15, 0.62, kTemps);
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.62;
  std::vector<double> grid;
  for (double x = 0.5; x <= 6.5; x += 0.5) grid.push_back(x);
  const CharacteristicStraight cs = characteristic_straight(data, grid, opt);
  EXPECT_GT(cs.r_squared, 0.99999);
  // Slope close to the pairwise theory value over the data span.
  const double theory = characteristic_slope_theory(222.3, 400.1);
  EXPECT_NEAR(cs.slope, theory, 0.15 * std::abs(theory));
  // And the true couple lies on the line.
  const double eg_at_true_xti = cs.intercept + cs.slope * 3.0;
  EXPECT_NEAR(eg_at_true_xti, 1.17, 2e-4);
}

TEST(CharacteristicStraightTest, SlopeTheoryValue) {
  // Around (247, 348) K the slope is about -21 mV per XTI unit.
  const double s = characteristic_slope_theory(247.0, 348.0);
  EXPECT_NEAR(s, -0.0254, 3e-3);
  EXPECT_THROW((void)characteristic_slope_theory(300.0, 250.0), Error);
}

TEST(MeijerExtract, ExactOnSyntheticData) {
  physics::VbeModelParams p{1.132, 3.6, 297.0, 0.64};
  const double t1 = 247.0, t2 = 297.0, t3 = 348.0;
  const EgXtiResult r =
      meijer_extract(t1, physics::vbe_of_t(p, t1), t2,
                     physics::vbe_of_t(p, t2), t3, physics::vbe_of_t(p, t3));
  EXPECT_NEAR(r.eg, 1.132, 1e-9);
  EXPECT_NEAR(r.xti, 3.6, 1e-6);
}

TEST(MeijerExtract, OrderingValidated) {
  EXPECT_THROW((void)meijer_extract(300.0, 0.6, 250.0, 0.7, 350.0, 0.5),
               Error);
}

TEST(ComputedTemperature, ExactForPtatDeltaVbe) {
  const double t2 = 297.0;
  const double d2 = physics::delta_vbe_ptat(t2, 8.0);
  for (double t : {247.0, 273.0, 348.0, 398.0}) {
    const double d = physics::delta_vbe_ptat(t, 8.0);
    EXPECT_NEAR(computed_temperature(d, d2, t2), t, 1e-9) << t;
  }
}

TEST(ComputedTemperature, OffsetCompressesBothEnds) {
  // A constant additive error on dVBE pulls computed temperatures toward
  // the reference -- the Table-1 signature direction.
  const double t2 = 297.0;
  const double c = 1e-3;
  const double d2 = physics::delta_vbe_ptat(t2, 8.0) + c;
  const double d1 = physics::delta_vbe_ptat(247.0, 8.0) + c;
  const double d3 = physics::delta_vbe_ptat(348.0, 8.0) + c;
  EXPECT_GT(computed_temperature(d1, d2, t2), 247.0);
  EXPECT_LT(computed_temperature(d3, d2, t2), 348.0);
}

TEST(CurrentCorrection, XEqualsOneMeansNoCorrection) {
  EXPECT_DOUBLE_EQ(current_ratio_x(1e-5, 1e-5, 2e-5, 2e-5), 1.0);
  EXPECT_DOUBLE_EQ(current_correction_coefficient(297.0, 1.0), 0.0);
  const double d2 = physics::delta_vbe_ptat(297.0, 8.0);
  const double d1 = physics::delta_vbe_ptat(247.0, 8.0);
  EXPECT_DOUBLE_EQ(computed_temperature_corrected(d1, d2, 297.0, 1.0),
                   computed_temperature(d1, d2, 297.0));
}

TEST(CurrentCorrection, PaperSectionFourMagnitude) {
  // The paper evaluates A = (k T2/q) ln X for T1 = 0 C, T2 = 100 C and
  // finds ~0.3 mV, i.e. 0.45 % of a 70 mV dVBE(T2) -- negligible.
  const double t2 = to_kelvin(100.0);
  // An X of ~1.01 (1 % collector-current ratio drift over 100 K):
  const double a = current_correction_coefficient(t2, 1.0094);
  EXPECT_NEAR(a, 0.3e-3, 0.05e-3);
  EXPECT_NEAR(a / 70e-3, 0.0045, 1e-3);
}

TEST(CurrentCorrection, RecoversExactTemperatureWithDriftingRatio) {
  // dVBE built with a temperature-dependent current ratio; eq. (19) with
  // the eq.-(20) X must undo it exactly.
  const double t2 = 297.0, t1 = 247.0;
  const double ica_t1 = 1.00e-5, icb_t1 = 1.02e-5;  // ratio drifted at T1
  const double ica_t2 = 1.00e-5, icb_t2 = 1.00e-5;
  const double d1 = physics::delta_vbe_general(t1, 8.0, ica_t1, icb_t1);
  const double d2 = physics::delta_vbe_general(t2, 8.0, ica_t2, icb_t2);
  const double x = current_ratio_x(ica_t1, icb_t1, ica_t2, icb_t2);
  // Raw eq. (16) is biased; corrected eq. (19) is exact.
  EXPECT_GT(std::abs(computed_temperature(d1, d2, t2) - t1), 0.2);
  EXPECT_NEAR(computed_temperature_corrected(d1, d2, t2, x), t1, 1e-9);
}

TEST(MeijerLine, PassesThroughTrueCouple) {
  physics::VbeModelParams p{1.17, 3.0, 297.0, 0.64};
  std::vector<double> grid{0.5, 3.0, 6.5};
  const Series line =
      meijer_line(247.0, physics::vbe_of_t(p, 247.0), 297.0,
                  physics::vbe_of_t(p, 297.0), grid);
  EXPECT_NEAR(line.y(1), 1.17, 1e-9);  // EG at XTI = 3
  // Slope equals the characteristic-straight theory for this pair.
  const double slope = (line.y(2) - line.y(0)) / (line.x(2) - line.x(0));
  EXPECT_NEAR(slope, characteristic_slope_theory(247.0, 297.0), 1e-9);
}

TEST(Dataset, VbeAtCurrentInvertsIdealDiode) {
  // Build an exact exponential IC(VBE) curve and invert it.
  Series curve("icvbe");
  const double is = 1e-15, vt = thermal_voltage(300.0);
  for (double v = 0.3; v <= 0.8; v += 0.05) {
    curve.push_back(v, is * std::exp(v / vt));
  }
  const double target = 1e-6;
  const double vbe = vbe_at_current(curve, target);
  EXPECT_NEAR(vbe, vt * std::log(target / is), 1e-9);
  EXPECT_THROW((void)vbe_at_current(curve, 1.0), Error);  // out of range
}

TEST(Dataset, SliceFamilyProducesVbeVsT) {
  // Three synthetic exponential curves at different temperatures.
  std::vector<Series> family;
  std::vector<double> temps{250.0, 300.0, 350.0};
  const double eg = 1.15, xti = 3.0, is0 = 1e-15;
  for (double t : temps) {
    Series s("T");
    const double is = physics::spice_is(is0, eg, xti, t, 300.0);
    const double vt = thermal_voltage(t);
    for (double v = 0.2; v <= 0.9; v += 0.025) {
      s.push_back(v, is * std::exp(v / vt));
    }
    family.push_back(std::move(s));
  }
  const auto samples = vbe_vs_t_at_constant_ic(family, temps, 1e-7);
  ASSERT_EQ(samples.size(), 3u);
  // VBE decreases with temperature at constant current.
  EXPECT_GT(samples[0].vbe, samples[1].vbe);
  EXPECT_GT(samples[1].vbe, samples[2].vbe);
  // And the sliced dataset is consistent with the generating law.
  BestFitOptions opt;
  opt.t0 = 300.0;
  const EgXtiResult r = best_fit_eg_xti(samples, opt);
  EXPECT_NEAR(r.eg, eg, 5e-3);
  EXPECT_NEAR(r.xti, xti, 0.3);
}

TEST(Sensitivity, OnePercentVbeGivesUpToEightPercentEg) {
  // The section-3 claim. Independent 1 % errors through the
  // ill-conditioned fit blow up to several percent of EG; the worst case
  // reaches the claimed "up to 8 %".
  const auto data = synth(1.17, 3.0, 298.15, 0.62,
                          {223.15, 248.15, 273.15, 298.15, 323.15, 348.15,
                           373.15, 398.15});
  BestFitOptions opt;
  opt.t0 = 298.15;
  const VbeErrorPropagation prop =
      propagate_vbe_error(data, 1.17, 0.01, 200, opt);
  EXPECT_GT(prop.eg_rel_rms, 0.005);   // far more than the naive 1 %
  EXPECT_GT(prop.eg_rel_max, 0.02);
  EXPECT_LT(prop.eg_rel_max, 0.80);
  const double worst = worst_case_eg_error(data, 1.17, 0.01, opt);
  EXPECT_GT(worst, 0.02);
  EXPECT_LT(worst, 0.25);
}

TEST(Sensitivity, ErrorScalesRoughlyLinearly) {
  const auto data = synth(1.17, 3.0, 298.15, 0.62, kTemps);
  BestFitOptions opt;
  opt.t0 = 298.15;
  const auto p1 = propagate_vbe_error(data, 1.17, 0.001, 100, opt);
  const auto p10 = propagate_vbe_error(data, 1.17, 0.01, 100, opt);
  EXPECT_NEAR(p10.eg_rel_rms / p1.eg_rel_rms, 10.0, 3.0);
}

TEST(Sensitivity, T2ErrorBelowFiveKelvinIsBenign) {
  // Meijer's robustness claim: dT2 < 5 K has no significant influence.
  physics::VbeModelParams p{1.132, 3.6, 297.0, 0.64};
  const auto rows = meijer_t2_sensitivity(
      247.0, physics::vbe_of_t(p, 247.0), 297.0, physics::vbe_of_t(p, 297.0),
      348.0, physics::vbe_of_t(p, 348.0), {-5.0, -2.0, 0.0, 2.0, 5.0});
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& r : rows) {
    EXPECT_NEAR(r.eg, 1.132, 0.02) << "dT2=" << r.delta_t2;
    EXPECT_NEAR(r.xti, 3.6, 1.2) << "dT2=" << r.delta_t2;
  }
}

// Property sweep: best fit recovers any couple exactly when VBE(T0) is
// known -- over the whole Fig.-6 plotting window.
struct Couple {
  double eg, xti;
};
class BestFitRecoveryTest : public ::testing::TestWithParam<Couple> {};

TEST_P(BestFitRecoveryTest, ExactRecovery) {
  const auto [eg, xti] = GetParam();
  const auto data = synth(eg, xti, 298.15, 0.63, kTemps);
  BestFitOptions opt;
  opt.t0 = 298.15;
  opt.vbe_t0 = 0.63;
  const EgXtiResult r = best_fit_eg_xti(data, opt);
  EXPECT_NEAR(r.eg, eg, 1e-8);
  EXPECT_NEAR(r.xti, xti, 1e-5);
  // Meijer agrees using three of the same points.
  const EgXtiResult m = meijer_extract(
      data[1].t_kelvin, data[1].vbe, data[3].t_kelvin, data[3].vbe,
      data[6].t_kelvin, data[6].vbe);
  EXPECT_NEAR(m.eg, eg, 1e-8);
  EXPECT_NEAR(m.xti, xti, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Fig6Window, BestFitRecoveryTest,
    ::testing::Values(Couple{1.05, 0.5}, Couple{1.10, 2.0}, Couple{1.17, 3.0},
                      Couple{1.20, 4.5}, Couple{1.28, 6.5}));

}  // namespace
}  // namespace icvbe::extract
