// Transient engine tests: companion-model exactness against discrete
// closed forms (the recurrence a backward-Euler / trapezoidal integrator
// must reproduce bit-for-bit up to roundoff), LTE step control behaviour,
// dense/sparse engine agreement, and the allocation-free stepping
// contract.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/netlist_gen.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/spice/transient.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace {

using namespace icvbe;
using namespace icvbe::spice;

/// Fixed-step spec: pure single-method stepping on a uniform grid, the
/// shape the closed-form comparisons need.
TransientSpec fixed_spec(IntegrationMethod method, double h, double tstop,
                         bool uic = false) {
  TransientSpec spec;
  spec.tstep = h;
  spec.tstop = tstop;
  spec.method = method;
  spec.adaptive = false;
  spec.uic = uic;
  return spec;
}

// ------------------------------------------------------------------- RC ---

/// V1(1 V) - R - out - C - gnd, started discharged via UIC.
struct RcFixture {
  Circuit circuit;
  double r = 1e3;
  double c = 1e-6;
  RcFixture() {
    const NodeId in = circuit.node("in");
    const NodeId out = circuit.node("out");
    circuit.add_vsource("V1", in, kGround, 1.0);
    circuit.add_resistor("R1", in, out, r);
    circuit.add_capacitor("C1", out, kGround, c);
  }
};

TEST(TransientRcTest, BackwardEulerMatchesDiscreteClosedForm) {
  RcFixture f;
  SimSession session(f.circuit);
  const double h = 1e-5;
  TransientSolver solver(
      session, fixed_spec(IntegrationMethod::kBackwardEuler, h, 1e-3, true));
  const SweepResult result = solver.run({parse_probe("V(out)")});

  // BE on C dv/dt = (Vs - v)/R: v_{n+1} = (v_n + h/RC Vs) / (1 + h/RC),
  // i.e. v_n = Vs (1 - alpha^n) with alpha = 1 / (1 + h/RC) from v_0 = 0.
  const double alpha = 1.0 / (1.0 + h / (f.r * f.c));
  ASSERT_EQ(result.rows(), 101u);
  for (std::size_t n = 0; n < result.rows(); ++n) {
    const double expected =
        1.0 - std::pow(alpha, static_cast<double>(n));
    EXPECT_NEAR(result.value(0, n), expected, 1e-8)
        << "step " << n << " t = " << result.axis_value(0, n);
  }
}

TEST(TransientRcTest, TrapezoidalMatchesDiscreteRecurrence) {
  RcFixture f;
  SimSession session(f.circuit);
  const double h = 1e-5;
  TransientSolver solver(
      session, fixed_spec(IntegrationMethod::kTrapezoidal, h, 1e-3, true));
  const SweepResult result =
      solver.run({parse_probe("V(out)"), parse_probe("I(C1)")});

  // The exact recurrence of the trapezoidal companion from a committed
  // (v_0, i_0) = (0, 0) start: solve the stamped system by hand per step.
  const double geq = 2.0 * f.c / h;
  double v = 0.0;
  double ic = 0.0;
  ASSERT_EQ(result.rows(), 101u);
  EXPECT_NEAR(result.value(0, 0), 0.0, 1e-15);
  for (std::size_t n = 1; n < result.rows(); ++n) {
    // KCL at out: (Vs - v') / R = geq (v' - v) - ic.
    const double v_new =
        (1.0 / f.r + geq * v + ic) / (1.0 / f.r + geq);
    const double ic_new = geq * (v_new - v) - ic;
    v = v_new;
    ic = ic_new;
    EXPECT_NEAR(result.value(0, n), v, 1e-8) << "step " << n;
    EXPECT_NEAR(result.value(1, n), ic, 1e-8) << "step " << n;
  }
  // Sanity against the continuous response. The dominant deviation is the
  // committed i_0 = 0 start (the source steps discontinuously at t = 0+,
  // the pre-step current is zero), worth ~h/(2 tau) = 5e-3 decaying with
  // the homogeneous solution -- not the integrator's own O(h^2) error.
  const double t_end = result.axis_value(0, result.rows() - 1);
  EXPECT_NEAR(result.value(0, result.rows() - 1),
              1.0 - std::exp(-t_end / (f.r * f.c)), 5e-3);
}

TEST(TransientRcTest, IcDirectiveOverridesOperatingPoint) {
  // R || C discharging from .IC V(out)=1 without UIC: the operating point
  // (0 V) is solved first, then the .IC override applies.
  Circuit circuit;
  const NodeId out = circuit.node("out");
  circuit.add_resistor("R1", out, kGround, 1e3);
  circuit.add_capacitor("C1", out, kGround, 1e-6);
  SimSession session(circuit);
  const double h = 1e-5;
  TransientSpec spec = fixed_spec(IntegrationMethod::kBackwardEuler, h, 5e-4);
  spec.initial_conditions = {{"out", 1.0}};
  TransientSolver solver(session, spec);
  const SweepResult result = solver.run({parse_probe("V(out)")});

  const double alpha = 1.0 / (1.0 + h / (1e3 * 1e-6));
  for (std::size_t n = 0; n < result.rows(); ++n) {
    EXPECT_NEAR(result.value(0, n), std::pow(alpha, static_cast<double>(n)),
                1e-8)
        << "step " << n;
  }
}

// ------------------------------------------------------------------- RL ---

TEST(TransientRlTest, BackwardEulerMatchesDiscreteClosedForm) {
  // V1(1 V) - R - mid - L - gnd energising from i = 0.
  Circuit circuit;
  const NodeId in = circuit.node("in");
  const NodeId mid = circuit.node("mid");
  const double r = 10.0;
  const double l = 1e-3;
  circuit.add_vsource("V1", in, kGround, 1.0);
  circuit.add_resistor("R1", in, mid, r);
  circuit.add_inductor("L1", mid, kGround, l);
  SimSession session(circuit);
  const double h = 1e-6;
  TransientSolver solver(
      session,
      fixed_spec(IntegrationMethod::kBackwardEuler, h, 2e-4, true));
  const SweepResult result = solver.run({parse_probe("I(L1)")});

  // BE on L di/dt = Vs - i R: i_{n+1} = (i_n + h/L Vs) / (1 + h R / L),
  // i.e. i_n = (Vs/R)(1 - alpha^n) with alpha = 1 / (1 + h R / L).
  const double alpha = 1.0 / (1.0 + h * r / l);
  for (std::size_t n = 0; n < result.rows(); ++n) {
    EXPECT_NEAR(result.value(0, n),
                (1.0 / r) * (1.0 - std::pow(alpha, static_cast<double>(n))),
                1e-8)
        << "step " << n;
  }
}

TEST(TransientRlTest, UicDeviceInitialConditionImprints) {
  // L (IC = 0.5 A) freewheeling into a parallel R: i decays geometrically
  // and the t = 0 row must already read the imprinted 0.5 A.
  Circuit circuit;
  const NodeId a = circuit.node("a");
  const double r = 2.0;
  const double l = 1e-3;
  circuit.add_resistor("R1", a, kGround, r);
  circuit.add_inductor("L1", a, kGround, l, 0.5);
  SimSession session(circuit);
  const double h = 1e-6;
  TransientSolver solver(
      session,
      fixed_spec(IntegrationMethod::kBackwardEuler, h, 1e-4, true));
  const SweepResult result = solver.run({parse_probe("I(L1)")});

  const double alpha = 1.0 / (1.0 + h * r / l);
  EXPECT_DOUBLE_EQ(result.value(0, 0), 0.5);
  for (std::size_t n = 0; n < result.rows(); ++n) {
    EXPECT_NEAR(result.value(0, n),
                0.5 * std::pow(alpha, static_cast<double>(n)), 1e-8)
        << "step " << n;
  }
}

// ------------------------------------------------------------------- LC ---

TEST(TransientLcTest, TrapezoidalMatchesRecurrenceAndConservesEnergy) {
  // Ideal LC tank rung from V(a) = 1, i = 0: trapezoidal must preserve the
  // quadratic invariant C v^2 + L i^2 exactly (up to roundoff) -- the
  // property that makes it the oscillation-safe default.
  Circuit circuit;
  const NodeId a = circuit.node("a");
  const double c = 1e-9;
  const double l = 1e-6;
  circuit.add_capacitor("C1", a, kGround, c, 1.0);
  circuit.add_inductor("L1", a, kGround, l);
  NewtonOptions options;
  options.gmin_floor = 0.0;  // no artificial damping in the tank
  SimSession session(circuit, options);
  const double h = 1e-9;  // ~200 steps per period
  TransientSpec spec =
      fixed_spec(IntegrationMethod::kTrapezoidal, h, 1e-6, true);
  spec.initial_conditions = {{"a", 1.0}};
  TransientSolver solver(session, spec);
  const SweepResult result =
      solver.run({parse_probe("V(a)"), parse_probe("I(L1)")});

  // Exact recurrence of the stamped trapezoidal system.
  const double geq = 2.0 * c / h;
  double v = 1.0, ic = 0.0, il = 0.0;
  const double e0 = c * v * v + l * il * il;
  for (std::size_t n = 1; n < result.rows(); ++n) {
    // KCL at a: geq (v' - v) - ic + il' = 0 with
    // il' = il + (h / 2L)(v + v').
    const double v_new = ((geq - h / (2.0 * l)) * v + ic - il) /
                         (geq + h / (2.0 * l));
    const double il_new = il + h / (2.0 * l) * (v + v_new);
    const double ic_new = geq * (v_new - v) - ic;
    v = v_new;
    il = il_new;
    ic = ic_new;
    EXPECT_NEAR(result.value(0, n), v, 1e-8) << "step " << n;
    EXPECT_NEAR(result.value(1, n), il, 1e-8) << "step " << n;

    const double e = c * result.value(0, n) * result.value(0, n) +
                     l * result.value(1, n) * result.value(1, n);
    EXPECT_NEAR(e / e0, 1.0, 1e-8) << "energy drift at step " << n;
  }
  // ~5 periods in: the oscillation has not decayed.
  double vmax_tail = 0.0;
  for (std::size_t n = result.rows() - 250; n < result.rows(); ++n) {
    vmax_tail = std::max(vmax_tail, std::abs(result.value(0, n)));
  }
  EXPECT_GT(vmax_tail, 0.999);
}

// ---------------------------------------------------------- LTE control ---

/// RC lowpass behind a delayed fast PULSE edge; used by the step-control
/// tests.
std::vector<double> lte_case_times(long* rejected = nullptr) {
  Circuit circuit;
  const NodeId in = circuit.node("in");
  const NodeId out = circuit.node("out");
  auto& v1 = circuit.add_vsource("V1", in, kGround, 0.0);
  v1.set_waveform(
      Waveform::pulse(0.0, 1.0, 1e-3, 1e-5, 1e-5, 2e-3, 0.0));
  circuit.add_resistor("R1", in, out, 10e3);
  circuit.add_capacitor("C1", out, kGround, 10e-9);
  SimSession session(circuit);
  TransientSpec spec;
  spec.tstep = 5e-5;
  spec.tstop = 6e-3;
  TransientSolver solver(session, spec);
  solver.begin();
  std::vector<double> times{solver.time()};
  while (solver.advance()) times.push_back(solver.time());
  if (rejected != nullptr) *rejected = solver.steps_rejected();
  return times;
}

TEST(TransientLteTest, StepShrinksOnEdgeAndGrowsOnSmoothTail) {
  const std::vector<double> times = lte_case_times();
  double min_edge_step = 1e9;
  double max_pre_edge_step = 0.0;
  double max_settle_step = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double h = times[i] - times[i - 1];
    const double t = times[i];
    if (t > 1e-3 && t <= 1.2e-3) min_edge_step = std::min(min_edge_step, h);
    if (t <= 1e-3) max_pre_edge_step = std::max(max_pre_edge_step, h);
    if (t > 2e-3 && t <= 3e-3) {
      max_settle_step = std::max(max_settle_step, h);
    }
  }
  // Shrinks into the edge by well over an order of magnitude relative to
  // the quiescent stretch before it...
  EXPECT_LT(min_edge_step, max_pre_edge_step / 10.0);
  // ...and grows back out on the smooth settling tail.
  EXPECT_GT(max_settle_step, min_edge_step * 10.0);
  // A breakpoint lands a step exactly on the edge start.
  const double edge = 1e-3;
  double closest = 1e9;
  for (double t : times) closest = std::min(closest, std::abs(t - edge));
  EXPECT_LT(closest, 1e-9);
}

TEST(TransientLteTest, StepSequenceIsDeterministic) {
  long rejected_a = 0;
  long rejected_b = 0;
  const std::vector<double> a = lte_case_times(&rejected_a);
  const std::vector<double> b = lte_case_times(&rejected_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "step " << i;  // bit-identical, not just close
  }
  EXPECT_EQ(rejected_a, rejected_b);
}

// ------------------------------------------- dense/sparse + allocations ---

TEST(TransientEngineTest, DenseAndSparseResultsAgreeOnRcLadderDeck) {
  SyntheticNetlistSpec gen;
  gen.topology = SyntheticTopology::kRcLadder;
  gen.nodes = 80;
  gen.seed = 11;
  const std::string deck = generate_netlist(gen);

  SweepResult results[2];
  for (int engine = 0; engine < 2; ++engine) {
    auto parsed = parse_netlist(deck);
    ASSERT_TRUE(parsed.plan.has_value());
    ASSERT_TRUE(parsed.plan->transient.has_value());
    AnalysisPlan plan = *parsed.plan;
    // Uniform grid so both engines produce identical row sets, and tight
    // Newton tolerances so solver slack stays below the 1e-10 comparison.
    plan.transient->adaptive = false;
    plan.transient->tstep = plan.transient->tstop / 100.0;
    NewtonOptions options;
    options.v_abstol = 1e-11;
    options.i_abstol = 1e-14;
    options.reltol = 1e-12;
    options.sparse =
        engine == 0 ? SparseMode::kDense : SparseMode::kSparse;
    plan.options = options;
    SimSession session(*parsed.circuit, options);
    results[engine] = session.run(plan);
  }
  ASSERT_EQ(results[0].rows(), results[1].rows());
  ASSERT_EQ(results[0].probe_count(), results[1].probe_count());
  for (std::size_t p = 0; p < results[0].probe_count(); ++p) {
    for (std::size_t r = 0; r < results[0].rows(); ++r) {
      EXPECT_NEAR(results[0].value(p, r), results[1].value(p, r), 1e-10)
          << "probe " << p << " row " << r;
    }
  }
}

TEST(TransientEngineTest, AdvanceIsAllocationFreeAfterSetup) {
  for (const SparseMode mode : {SparseMode::kDense, SparseMode::kSparse}) {
    SyntheticNetlistSpec gen;
    gen.topology = SyntheticTopology::kRcLadder;
    gen.nodes = 30;
    gen.seed = 3;
    auto parsed = parse_netlist(generate_netlist(gen));
    ASSERT_TRUE(parsed.plan->transient.has_value());
    NewtonOptions options;
    options.sparse = mode;
    SimSession session(*parsed.circuit, options);
    TransientSolver solver(session, *parsed.plan->transient);
    solver.begin();
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(solver.advance());

    const std::uint64_t before = icvbe::testing::allocation_count();
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(solver.advance());
    const std::uint64_t after = icvbe::testing::allocation_count();
    EXPECT_EQ(after - before, 0u)
        << (mode == SparseMode::kDense ? "dense" : "sparse")
        << " engine allocated in the transient stepping loop";
  }
}

// -------------------------------------------------- plan / deck plumbing ---

TEST(TransientPlanTest, DeckTranRunsThroughSessionRun) {
  const char* deck = R"(
V1 in 0 PULSE(0 1 0 1u)
R1 in out 1k
C1 out 0 1u
.TRAN 10u 1m
.PROBE V(out) I(V1)
.END
)";
  auto parsed = parse_netlist(deck);
  ASSERT_TRUE(parsed.plan.has_value());
  ASSERT_TRUE(parsed.plan->transient.has_value());
  SimSession session(*parsed.circuit);
  const SweepResult result = session.run(*parsed.plan);
  ASSERT_EQ(result.axis_labels().size(), 1u);
  EXPECT_EQ(result.axis_labels()[0], "TIME");
  ASSERT_EQ(result.probe_count(), 2u);
  ASSERT_GE(result.rows(), 3u);
  EXPECT_DOUBLE_EQ(result.axis_value(0, 0), 0.0);
  EXPECT_NEAR(result.axis_value(0, result.rows() - 1), 1e-3, 1e-9);
  // Monotone non-decreasing time axis, final value near the asymptote.
  for (std::size_t r = 1; r < result.rows(); ++r) {
    EXPECT_GT(result.axis_value(0, r), result.axis_value(0, r - 1));
  }
  // tstop is one time constant: the recorded end value sits at 1 - 1/e.
  EXPECT_NEAR(result.value(0, result.rows() - 1), 1.0 - std::exp(-1.0),
              1e-2);
  // series() works on the single TIME axis.
  const Series s = result.series(0);
  EXPECT_EQ(s.size(), result.rows());
}

TEST(TransientPlanTest, TransientPlanRejectsSweepAxes) {
  RcFixture f;
  SimSession session(f.circuit);
  AnalysisPlan plan;
  plan.transient = fixed_spec(IntegrationMethod::kBackwardEuler, 1e-5, 1e-4);
  plan.axes.push_back(SweepAxis::temperature_celsius(
      SweepGrid::list({25.0})));
  plan.probes = {parse_probe("V(out)")};
  EXPECT_THROW((void)session.run(plan), PlanError);
}

TEST(TransientPlanTest, SolverValidatesSpec) {
  RcFixture f;
  SimSession session(f.circuit);
  TransientSpec bad;
  bad.tstep = 0.0;
  bad.tstop = 1e-3;
  EXPECT_THROW(TransientSolver(session, bad), Error);
  bad.tstep = 1e-5;
  bad.tstop = 0.0;
  EXPECT_THROW(TransientSolver(session, bad), Error);
}

TEST(TransientPlanTest, UnknownIcNodeThrows) {
  RcFixture f;
  SimSession session(f.circuit);
  TransientSpec spec = fixed_spec(IntegrationMethod::kBackwardEuler, 1e-5,
                                  1e-4);
  spec.initial_conditions = {{"nope", 1.0}};
  TransientSolver solver(session, spec);
  EXPECT_THROW(solver.begin(), CircuitError);
}

// ----------------------------------------------------------- waveforms ---

TEST(WaveformTest, PulseValueAndCorners) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 1e-3, 1e-4, 2e-4, 5e-4, 2e-3);
  EXPECT_DOUBLE_EQ(w.value_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value_at(1e-3), 0.0);       // edge start is still v1
  EXPECT_NEAR(w.value_at(1.05e-3), 0.5, 1e-12);  // mid-rise (fmod noise)
  EXPECT_DOUBLE_EQ(w.value_at(1.2e-3), 1.0);     // on the flat top
  EXPECT_NEAR(w.value_at(1.7e-3), 0.5, 1e-12);   // mid-fall
  EXPECT_DOUBLE_EQ(w.value_at(1.9e-3), 0.0);     // back at v1
  EXPECT_DOUBLE_EQ(w.value_at(3.2e-3), 1.0);     // second period top
  EXPECT_DOUBLE_EQ(w.dc_value(), 0.0);

  std::vector<double> bps;
  w.append_breakpoints(4e-3, bps);
  // Two full periods of 4 corners each fit in [0, 4 ms].
  EXPECT_EQ(bps.size(), 8u);
  EXPECT_DOUBLE_EQ(bps[0], 1e-3);
  EXPECT_DOUBLE_EQ(bps[1], 1.1e-3);
}

TEST(WaveformTest, BreakpointCapIsPerWaveform) {
  // A pulse dense enough to hit the per-waveform cap must not starve a
  // later source of its corners.
  std::vector<double> bps;
  const Waveform dense =
      Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 1e-9, 4e-9);
  dense.append_breakpoints(1.0, bps);
  EXPECT_EQ(bps.size(), Waveform::kMaxBreakpoints);
  const Waveform late = Waveform::pwl({{0.0, 0.0}, {0.5, 1.0}});
  late.append_breakpoints(1.0, bps);
  EXPECT_EQ(bps.size(), Waveform::kMaxBreakpoints + 1);
  EXPECT_DOUBLE_EQ(bps.back(), 0.5);
}

TEST(WaveformTest, StepPulseHoldsForever) {
  const Waveform w = Waveform::pulse(0.2, 1.8);
  EXPECT_DOUBLE_EQ(w.value_at(0.0), 0.2);
  EXPECT_DOUBLE_EQ(w.value_at(1e-9), 1.8);
  EXPECT_DOUBLE_EQ(w.value_at(100.0), 1.8);
}

TEST(WaveformTest, SinAndPwl) {
  const Waveform s = Waveform::sin(0.5, 0.25, 1e3);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 0.5);
  EXPECT_NEAR(s.value_at(0.25e-3), 0.75, 1e-12);  // quarter period peak
  EXPECT_NEAR(s.value_at(1e-3), 0.5, 1e-12);

  const Waveform p = Waveform::pwl({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(p.value_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.value_at(2.0), 2.0);
  EXPECT_DOUBLE_EQ(p.value_at(10.0), 2.0);  // clamps past the last knot
  EXPECT_THROW((void)Waveform::pwl({{1.0, 0.0}, {0.5, 1.0}}), Error);
}

TEST(WaveformTest, ClonePreservesWaveform) {
  Circuit circuit;
  auto& v1 = circuit.add_vsource("V1", circuit.node("a"), kGround, 0.0);
  v1.set_waveform(Waveform::pulse(0.0, 1.0, 0.0, 1e-6));
  circuit.add_resistor("R1", circuit.node("a"), kGround, 1e3);
  const Circuit copy = circuit.clone();
  const auto& v1c = copy.get<VoltageSource>("V1");
  ASSERT_TRUE(v1c.has_waveform());
  EXPECT_DOUBLE_EQ(v1c.waveform().value_at(0.5e-6), 0.5);
}

}  // namespace
