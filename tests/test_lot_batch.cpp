// Tests for the batched value-plane solver stack: the SparseValueBatch
// kernel must be bit-identical to scalar frozen refactor/solve, the
// BatchDcSession lockstep Newton must be bit-identical to SimSession per
// lane, a failed lane must not perturb its lane mates, the per-die steady
// state must be allocation-free, and LotCampaign::run_batched() must be
// bit-identical to the per-die path for any lane count and thread count.
//
// This binary links icvbe_alloc_hook (see CMakeLists.txt) for the
// zero-allocation assertion.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/lab/lot_campaign.hpp"
#include "icvbe/linalg/sparse.hpp"
#include "icvbe/spice/batch_session.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace icvbe {
namespace {

// ------------------------------------------------- kernel level ---

// Shared MNA-flavoured pattern: tridiagonal conductances plus a
// voltage-source-style aux pair with a structurally zero diagonal, so the
// pivot permutation is not the identity.
linalg::SparseMatrix make_pattern(std::size_t n) {
  linalg::SparseMatrix m(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, i, 0.0);
    if (i + 1 < n) {
      m.add(i, i + 1, 0.0);
      m.add(i + 1, i, 0.0);
    }
  }
  m.add(0, n, 0.0);
  m.add(n, 0, 0.0);
  m.add(n, n, 0.0);  // structurally present, numerically zero
  m.freeze_pattern();
  return m;
}

// Fill `m` with lane `l`'s values: a small deterministic perturbation of
// the reference system, the shape of a Monte-Carlo die.
void fill_lane_values(linalg::SparseMatrix& m, std::size_t n, std::size_t l) {
  const double s = 1.0 + 0.01 * static_cast<double>(l);
  m.fill(0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m.add(i, i, 4.0 * s + 0.1 * static_cast<double>(i));
    if (i + 1 < n) {
      m.add(i, i + 1, -1.0 * s);
      m.add(i + 1, i, -1.0 / s);
    }
  }
  m.add(0, n, 1.0);
  m.add(n, 0, 1.0);
  m.add(n, n, 0.0);
}

TEST(SparseBatchKernelTest, BatchMatchesScalarFrozenRefactorBitwise) {
  const std::size_t n = 24;
  const std::size_t k = 4;
  linalg::SparseMatrix m = make_pattern(n);
  const std::size_t nn = n + 1;

  // Scalar reference: one factorisation, analysis pinned at lane 0's
  // values, then a frozen refactor + solve per lane.
  fill_lane_values(m, n, 0);
  linalg::SparseLuFactorization scalar_lu;
  scalar_lu.refactor(m);
  std::vector<linalg::Vector> scalar_x(k);
  for (std::size_t l = 0; l < k; ++l) {
    fill_lane_values(m, n, l);
    scalar_lu.refactor(m);  // same pattern stamp: frozen-pivot refactor
    linalg::Vector b(nn, 0.0);
    for (std::size_t i = 0; i < nn; ++i)
      b[i] = 1.0 + 0.5 * static_cast<double>(i) +
             0.125 * static_cast<double>(l);
    scalar_lu.solve_in_place(b);
    scalar_x[l] = std::move(b);
  }

  // Batch: same analysis reference, all K lanes in one refactor/solve.
  fill_lane_values(m, n, 0);
  linalg::SparseLuFactorization batch_lu;
  batch_lu.refactor(m);
  linalg::SparseValueBatch batch;
  batch.bind(m, k);
  for (std::size_t l = 0; l < k; ++l) {
    fill_lane_values(m, n, l);
    batch.load_lane(l, m);
  }
  std::vector<unsigned char> lane_ok(k, 1);
  batch_lu.refactor_batch(batch, lane_ok);
  for (std::size_t l = 0; l < k; ++l) EXPECT_EQ(lane_ok[l], 1);

  std::vector<double> rhs(nn * k);
  for (std::size_t i = 0; i < nn; ++i)
    for (std::size_t l = 0; l < k; ++l)
      rhs[i * k + l] = 1.0 + 0.5 * static_cast<double>(i) +
                       0.125 * static_cast<double>(l);
  batch_lu.solve_batch(rhs);

  // Exact equality on purpose: the lockstep elimination must perform the
  // scalar operation sequence per lane, to the bit.
  for (std::size_t l = 0; l < k; ++l)
    for (std::size_t i = 0; i < nn; ++i)
      EXPECT_EQ(rhs[i * k + l], scalar_x[l][i])
          << "lane " << l << " unknown " << i;
}

TEST(SparseBatchKernelTest, SingularLaneIsFlaggedLaneMatesUnaffected) {
  const std::size_t n = 12;
  const std::size_t k = 3;
  linalg::SparseMatrix m = make_pattern(n);
  const std::size_t nn = n + 1;

  fill_lane_values(m, n, 0);
  linalg::SparseLuFactorization scalar_lu;
  scalar_lu.refactor(m);
  std::vector<linalg::Vector> scalar_x(k);
  for (std::size_t l = 0; l < k; ++l) {
    if (l == 1) continue;  // the poisoned lane has no scalar reference
    fill_lane_values(m, n, l);
    scalar_lu.refactor(m);
    linalg::Vector b(nn, 1.0);
    scalar_lu.solve_in_place(b);
    scalar_x[l] = std::move(b);
  }

  fill_lane_values(m, n, 0);
  linalg::SparseLuFactorization batch_lu;
  batch_lu.refactor(m);
  linalg::SparseValueBatch batch;
  batch.bind(m, k);
  for (std::size_t l = 0; l < k; ++l) {
    fill_lane_values(m, n, l);
    if (l == 1) m.fill(0.0);  // exactly singular
    batch.load_lane(l, m);
  }
  std::vector<unsigned char> lane_ok(k, 1);
  batch_lu.refactor_batch(batch, lane_ok);
  EXPECT_EQ(lane_ok[0], 1);
  EXPECT_EQ(lane_ok[1], 0) << "singular lane must be rejected";
  EXPECT_EQ(lane_ok[2], 1);

  std::vector<double> rhs(nn * k, 1.0);
  batch_lu.solve_batch(rhs);
  for (std::size_t i = 0; i < nn; ++i) {
    EXPECT_EQ(rhs[i * k + 0], scalar_x[0][i]) << "unknown " << i;
    EXPECT_EQ(rhs[i * k + 2], scalar_x[2][i]) << "unknown " << i;
  }
}

// ------------------------------------------------ session level ---

using spice::BatchDcSession;
using spice::Circuit;
using spice::NewtonOptions;
using spice::SimSession;
using spice::SparseMode;

NewtonOptions sparse_options() {
  NewtonOptions opt;
  opt.sparse = SparseMode::kSparse;
  return opt;
}

struct CellLane {
  Circuit circuit;
  bandgap::TestCellHandles handles;
};

bandgap::TestCellParams lane_params(std::size_t l) {
  // The lab's nominal cell with real (PNP) device cards from the lot.
  bandgap::TestCellParams p = lab::CampaignConfig{}.cell;
  const lab::DieSample die = lab::SiliconLot{}.sample(1);
  p.qa_model = die.qa;
  p.qb_model = die.qb;
  const double scale = 1.0 + 0.01 * static_cast<double>(l);
  p.rx1 *= scale;
  p.rx2 *= scale;
  p.rb *= scale;
  p.opamp_offset = 1e-3 * static_cast<double>(l);
  return p;
}

/// The lane bit-identity contract under a given set of sparse engine
/// options: scalar sparse-forced SimSessions per lane vs one
/// shared-analysis BatchDcSession must agree to the bit. Parameterised by
/// SparseOptions so the same contract is asserted along the ordering
/// dimension (legacy min-degree vs the AMD+BTF default).
void check_cell_lanes_bit_identical(const NewtonOptions& opt) {
  const std::size_t k = 3;
  const double t = to_kelvin(25.0);

  // Scalar references: a fresh sparse-forced SimSession per lane, solved
  // from the analytic startup guess (the lab's own discipline).
  std::vector<spice::Unknowns> scalar_x;
  for (std::size_t l = 0; l < k; ++l) {
    CellLane lane;
    lane.handles = bandgap::build_test_cell(lane.circuit, lane_params(l));
    lane.circuit.set_temperature(t);
    SimSession session(lane.circuit, opt);
    const spice::Unknowns guess =
        bandgap::cell_initial_guess(lane.circuit, lane.handles, t);
    const auto& r = session.solve(&guess);
    ASSERT_TRUE(r.converged) << "lane " << l;
    EXPECT_EQ(r.strategy, "newton");
    scalar_x.push_back(r.solution);
  }

  // Batch: all K lanes through one shared-analysis session. The lanes are
  // built nominal and re-programmed through ParamDeltaSet, the lot
  // driver's own path.
  std::vector<CellLane> lanes(k);
  std::vector<Circuit*> ptrs;
  for (auto& lane : lanes) {
    lane.handles = bandgap::build_test_cell(lane.circuit, lane_params(0));
    ptrs.push_back(&lane.circuit);
  }
  BatchDcSession batch(std::move(ptrs), opt);
  for (std::size_t l = 0; l < k; ++l) {
    const bandgap::TestCellParams p = lane_params(l);
    spice::ParamDeltaSet d(lanes[l].circuit);
    d.set_resistance(d.bind_resistor("RX1"), p.rx1);
    d.set_resistance(d.bind_resistor("RX2"), p.rx2);
    d.set_resistance(d.bind_resistor("RB"), p.rb);
    d.set_opamp_offset(d.bind_opamp("U1"), p.opamp_offset);
    lanes[l].circuit.set_temperature(t);
    batch.begin_variant(l);
    batch.seed_warm_start(
        l, bandgap::cell_initial_guess(lanes[l].circuit, lanes[l].handles, t));
  }
  batch.solve_active();

  for (std::size_t l = 0; l < k; ++l) {
    ASSERT_TRUE(batch.status(l).converged) << "lane " << l;
    const auto& x = batch.solution(l);
    ASSERT_EQ(x.size(), scalar_x[l].size());
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(x.raw()[i], scalar_x[l].raw()[i])
          << "lane " << l << " unknown " << i;
  }
}

TEST(BatchDcSessionTest, CellLanesBitIdenticalToScalarSessions) {
  check_cell_lanes_bit_identical(sparse_options());
}

TEST(BatchDcSessionTest, CellLanesBitIdenticalUnderLegacyOrdering) {
  NewtonOptions opt = sparse_options();
  opt.sparse_options = linalg::SparseOptions::legacy();
  check_cell_lanes_bit_identical(opt);
}

TEST(BatchDcSessionTest, CellLanesBitIdenticalUnderForcedSupernode) {
  NewtonOptions opt = sparse_options();
  opt.sparse_options.supernode_min = 8;
  opt.sparse_options.supernode_density = 0.3;
  check_cell_lanes_bit_identical(opt);
}

TEST(BatchDcSessionTest, FailedLaneDoesNotPerturbLaneMates) {
  const std::size_t k = 3;
  const double t = to_kelvin(25.0);

  std::vector<spice::Unknowns> scalar_x(k);
  for (std::size_t l = 0; l < k; ++l) {
    if (l == 1) continue;
    CellLane lane;
    lane.handles = bandgap::build_test_cell(lane.circuit, lane_params(l));
    lane.circuit.set_temperature(t);
    SimSession session(lane.circuit, sparse_options());
    const spice::Unknowns guess =
        bandgap::cell_initial_guess(lane.circuit, lane.handles, t);
    const auto& r = session.solve(&guess);
    ASSERT_TRUE(r.converged);
    scalar_x[l] = r.solution;
  }

  std::vector<CellLane> lanes(k);
  std::vector<Circuit*> ptrs;
  for (auto& lane : lanes) {
    lane.handles = bandgap::build_test_cell(lane.circuit, lane_params(0));
    ptrs.push_back(&lane.circuit);
  }
  BatchDcSession batch(std::move(ptrs), sparse_options());
  for (std::size_t l = 0; l < k; ++l) {
    bandgap::TestCellParams p = lane_params(l);
    if (l == 1) p.opamp_offset = 1e6;  // a die that cannot converge
    spice::ParamDeltaSet d(lanes[l].circuit);
    d.set_resistance(d.bind_resistor("RX1"), p.rx1);
    d.set_resistance(d.bind_resistor("RX2"), p.rx2);
    d.set_resistance(d.bind_resistor("RB"), p.rb);
    d.set_opamp_offset(d.bind_opamp("U1"), p.opamp_offset);
    lanes[l].circuit.set_temperature(t);
    batch.begin_variant(l);
    batch.seed_warm_start(
        l, bandgap::cell_initial_guess(lanes[l].circuit, lanes[l].handles, t));
  }
  batch.solve_active();

  EXPECT_FALSE(batch.status(1).converged)
      << "the poisoned lane must not report convergence";
  for (std::size_t l : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(batch.status(l).converged) << "lane " << l;
    const auto& x = batch.solution(l);
    for (std::size_t i = 0; i < x.size(); ++i)
      EXPECT_EQ(x.raw()[i], scalar_x[l].raw()[i])
          << "lane " << l << " unknown " << i
          << ": a failed lane mate changed this lane's bits";
  }
}

TEST(BatchDcSessionTest, PerDieSteadyStateIsAllocationFree) {
  const std::size_t k = 2;
  const double t = to_kelvin(25.0);

  std::vector<CellLane> lanes(k);
  std::vector<Circuit*> ptrs;
  for (auto& lane : lanes) {
    lane.handles = bandgap::build_test_cell(lane.circuit, lane_params(0));
    ptrs.push_back(&lane.circuit);
  }
  BatchDcSession batch(std::move(ptrs), sparse_options());
  std::vector<spice::ParamDeltaSet> delta;
  std::vector<std::size_t> slot_rx1, slot_u1;
  for (std::size_t l = 0; l < k; ++l) {
    spice::ParamDeltaSet d(lanes[l].circuit);
    slot_rx1.push_back(d.bind_resistor("RX1"));
    slot_u1.push_back(d.bind_opamp("U1"));
    delta.push_back(std::move(d));
  }
  // Warm-up die: first solve allocates (analysis, factor planes, buffers)
  // and pins the shape. Seed each lane once so the steady state below can
  // reuse the preallocated warm-start storage.
  for (std::size_t l = 0; l < k; ++l) {
    lanes[l].circuit.set_temperature(t);
    batch.begin_variant(l);
    batch.seed_warm_start(
        l, bandgap::cell_initial_guess(lanes[l].circuit, lanes[l].handles, t));
  }
  batch.solve_active();
  for (std::size_t l = 0; l < k; ++l)
    ASSERT_TRUE(batch.status(l).converged);

  // Steady state: re-program parameters, reset variants, solve. The
  // re-programming and the whole lockstep Newton (stamp, refactor_batch,
  // solve_batch, damping, convergence test) must not touch the heap; only
  // the startup-guess construction (a lab-side Unknowns) may allocate, so
  // it sits outside the counting window.
  for (int die = 0; die < 3; ++die) {
    std::vector<spice::Unknowns> guess;
    for (std::size_t l = 0; l < k; ++l) {
      lanes[l].circuit.set_temperature(t);
      guess.push_back(bandgap::cell_initial_guess(lanes[l].circuit,
                                                  lanes[l].handles, t));
    }
    const std::uint64_t before = testing::allocation_count();
    for (std::size_t l = 0; l < k; ++l) {
      delta[l].set_resistance(slot_rx1[l],
                              lane_params(l).rx1 * (1.0 + 0.001 * die));
      delta[l].set_opamp_offset(slot_u1[l], 1e-4 * static_cast<double>(die));
      batch.begin_variant(l);
      batch.seed_warm_start(l, guess[l]);
    }
    batch.solve_active();
    for (std::size_t l = 0; l < k; ++l) {
      ASSERT_TRUE(batch.status(l).converged);
      (void)batch.solution(l);
    }
    const std::uint64_t after = testing::allocation_count();
    EXPECT_EQ(after, before)
        << "BatchDcSession allocated on the per-die steady-state path "
           "(die "
        << die << ")";
  }
}

// ---------------------------------------------- lot-campaign level ---

lab::LotCampaignConfig lot_config() {
  lab::LotCampaignConfig cfg;
  cfg.samples = 10;
  cfg.first_index = 1;
  cfg.seed_base = 9000;
  cfg.classical_celsius = {-25.0, 25.0, 75.0, 125.0};
  cfg.lab.newton.sparse = SparseMode::kSparse;
  return cfg;
}

void expect_die_bit_identical(const lab::DieCharacterisation& a,
                              const lab::DieCharacterisation& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.has_classical, b.has_classical);
  EXPECT_EQ(a.has_meijer, b.has_meijer);
  EXPECT_EQ(a.eg_classical, b.eg_classical);
  EXPECT_EQ(a.eg_meijer, b.eg_meijer);
  EXPECT_EQ(a.xti_meijer, b.xti_meijer);
  EXPECT_EQ(a.eg_measured_t, b.eg_measured_t);
  EXPECT_EQ(a.xti_measured_t, b.xti_measured_t);
  EXPECT_EQ(a.delta_t1, b.delta_t1);
  EXPECT_EQ(a.delta_t3, b.delta_t3);
  ASSERT_EQ(a.cell.size(), b.cell.size());
  for (std::size_t i = 0; i < a.cell.size(); ++i) {
    EXPECT_EQ(a.cell[i].vref, b.cell[i].vref);
    EXPECT_EQ(a.cell[i].delta_vbe, b.cell[i].delta_vbe);
    EXPECT_EQ(a.cell[i].t_sensor, b.cell[i].t_sensor);
    EXPECT_EQ(a.cell[i].ic_qa, b.cell[i].ic_qa);
    EXPECT_EQ(a.cell[i].ic_qb, b.cell[i].ic_qb);
  }
}

void expect_stat_bit_identical(const lab::LotStatistic& a,
                               const lab::LotStatistic& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.q10, b.q10);
  EXPECT_EQ(a.q50, b.q50);
  EXPECT_EQ(a.q90, b.q90);
}

TEST(LotBatchTest, BatchedBitIdenticalToPerDieForAnyLanesAndThreads) {
  lab::LotCampaignConfig ref_cfg = lot_config();
  ref_cfg.threads = 1;
  ref_cfg.lanes = 0;  // the classic per-die path
  const auto ref = lab::LotCampaign(lab::SiliconLot{}, ref_cfg).run();
  const lab::LotSummary ref_sum = lab::LotCampaign::summarise(ref);
  ASSERT_EQ(ref.size(), 10u);
  for (const auto& die : ref) ASSERT_TRUE(die.ok) << die.error;

  const unsigned lane_counts[] = {1, 4, 32};
  const unsigned thread_counts[] = {1, 3};
  for (unsigned lanes : lane_counts) {
    for (unsigned threads : thread_counts) {
      lab::LotCampaignConfig cfg = lot_config();
      cfg.threads = threads;
      cfg.lanes = lanes;
      const lab::LotCampaign campaign(lab::SiliconLot{}, cfg);
      // lanes == 1 exercises the batched machinery at K = 1 directly
      // (run() would route it to the classic path).
      const auto got = lanes > 1 ? campaign.run() : campaign.run_batched();
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        SCOPED_TRACE(::testing::Message()
                     << "lanes=" << lanes << " threads=" << threads
                     << " die=" << i);
        expect_die_bit_identical(ref[i], got[i]);
      }
      const lab::LotSummary got_sum = lab::LotCampaign::summarise(got);
      EXPECT_EQ(got_sum.dies_ok, ref_sum.dies_ok);
      EXPECT_EQ(got_sum.dies_failed, ref_sum.dies_failed);
      expect_stat_bit_identical(ref_sum.eg_classical, got_sum.eg_classical);
      expect_stat_bit_identical(ref_sum.eg_meijer, got_sum.eg_meijer);
      expect_stat_bit_identical(ref_sum.xti_meijer, got_sum.xti_meijer);
      expect_stat_bit_identical(ref_sum.delta_t1, got_sum.delta_t1);
      expect_stat_bit_identical(ref_sum.delta_t3, got_sum.delta_t3);
    }
  }
}

TEST(LotBatchTest, FailingDiesFallBackBitIdentically) {
  // A wild process: some dies fail (extraction or convergence), others
  // survive. The batched path must reproduce the per-die results exactly,
  // failures included, without a failed die poisoning its lane mates.
  lab::ProcessTruth truth = lab::ProcessTruth::nominal();
  truth.opamp_offset_sigma = 0.6;  // +-volts of offset: some dies are broken
  const lab::SiliconLot lot(truth);

  lab::LotCampaignConfig ref_cfg = lot_config();
  ref_cfg.samples = 8;
  ref_cfg.run_classical = false;
  ref_cfg.threads = 1;
  const auto ref = lab::LotCampaign(lot, ref_cfg).run();

  int ok = 0, failed = 0;
  for (const auto& die : ref) (die.ok ? ok : failed)++;
  ASSERT_GT(failed, 0) << "tune opamp_offset_sigma: no die failed";
  ASSERT_GT(ok, 0) << "tune opamp_offset_sigma: every die failed";

  lab::LotCampaignConfig cfg = ref_cfg;
  cfg.lanes = 4;
  cfg.threads = 2;
  const auto got = lab::LotCampaign(lot, cfg).run();
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "die=" << i);
    expect_die_bit_identical(ref[i], got[i]);
  }
}

TEST(LotBatchTest, BatchedPathRequiresSparseEngine) {
  lab::LotCampaignConfig cfg = lot_config();
  cfg.lanes = 4;
  cfg.lab.newton.sparse = SparseMode::kAuto;  // would pick dense at n = 7
  const lab::LotCampaign campaign(lab::SiliconLot{}, cfg);
  EXPECT_THROW((void)campaign.run(), Error);
}

}  // namespace
}  // namespace icvbe
