// Tests for lab::LotCampaign: the parallel lot engine must be
// deterministic in the thread count (bit-identical results for 1 vs N
// workers), deterministic run-to-run, and consistent with running the
// per-die procedure by hand.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/lab/lot_campaign.hpp"

namespace icvbe::lab {
namespace {

LotCampaignConfig small_config() {
  LotCampaignConfig cfg;
  cfg.samples = 6;
  cfg.first_index = 1;
  cfg.seed_base = 9000;
  // Keep the per-die work light: three-temperature Meijer sweep only.
  cfg.run_classical = false;
  return cfg;
}

void expect_bit_identical(const DieCharacterisation& a,
                          const DieCharacterisation& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.has_classical, b.has_classical);
  EXPECT_EQ(a.has_meijer, b.has_meijer);
  // Exact equality on purpose: determinism means bit-identical doubles.
  EXPECT_EQ(a.eg_classical, b.eg_classical);
  EXPECT_EQ(a.eg_meijer, b.eg_meijer);
  EXPECT_EQ(a.xti_meijer, b.xti_meijer);
  EXPECT_EQ(a.eg_measured_t, b.eg_measured_t);
  EXPECT_EQ(a.xti_measured_t, b.xti_measured_t);
  EXPECT_EQ(a.delta_t1, b.delta_t1);
  EXPECT_EQ(a.delta_t3, b.delta_t3);
  ASSERT_EQ(a.cell.size(), b.cell.size());
  for (std::size_t i = 0; i < a.cell.size(); ++i) {
    EXPECT_EQ(a.cell[i].vref, b.cell[i].vref);
    EXPECT_EQ(a.cell[i].delta_vbe, b.cell[i].delta_vbe);
    EXPECT_EQ(a.cell[i].t_sensor, b.cell[i].t_sensor);
  }
}

TEST(LotCampaignTest, ThreadCountDoesNotChangeResults) {
  LotCampaignConfig serial = small_config();
  serial.threads = 1;
  LotCampaignConfig parallel = small_config();
  parallel.threads = 4;

  const auto a = LotCampaign(SiliconLot{}, serial).run();
  const auto b = LotCampaign(SiliconLot{}, parallel).run();

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_bit_identical(a[i], b[i]);
  }

  // The lot statistics are plain folds over index-ordered results, so they
  // inherit the bit-identity.
  const LotSummary sa = LotCampaign::summarise(a);
  const LotSummary sb = LotCampaign::summarise(b);
  EXPECT_EQ(sa.dies_ok, sb.dies_ok);
  // run_classical was off: the summary must not fabricate statistics from
  // never-computed fields.
  EXPECT_EQ(sa.eg_classical.count, 0u);
  EXPECT_EQ(sa.eg_meijer.mean, sb.eg_meijer.mean);
  EXPECT_EQ(sa.eg_meijer.stddev, sb.eg_meijer.stddev);
  EXPECT_EQ(sa.xti_meijer.q50, sb.xti_meijer.q50);
  EXPECT_EQ(sa.delta_t1.min, sb.delta_t1.min);
  EXPECT_EQ(sa.delta_t3.max, sb.delta_t3.max);
}

TEST(LotCampaignTest, RunMatchesPerDieProcedure) {
  LotCampaignConfig cfg = small_config();
  cfg.samples = 3;
  cfg.threads = 2;
  const LotCampaign campaign{SiliconLot{}, cfg};
  const auto all = campaign.run();
  ASSERT_EQ(all.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    expect_bit_identical(all[static_cast<std::size_t>(i)],
                         campaign.run_die(i));
  }
}

TEST(LotCampaignTest, ResultsAreOrderedAndPlausible) {
  LotCampaignConfig cfg = small_config();
  cfg.run_classical = true;
  cfg.classical_celsius = {-25.0, 0.0, 25.0, 50.0, 75.0};
  cfg.samples = 4;
  const LotCampaign campaign{SiliconLot{}, cfg};
  const auto dies = campaign.run();

  const SiliconLot lot;
  ASSERT_EQ(dies.size(), 4u);
  for (std::size_t i = 0; i < dies.size(); ++i) {
    const auto& d = dies[i];
    EXPECT_EQ(d.index, static_cast<int>(i) + 1);
    ASSERT_TRUE(d.ok) << d.error;
    // The analytical method clusters around the truth; the classical
    // best-fit carries the systematic bias the paper documents, so it only
    // has to land in the physically sensible window.
    EXPECT_NEAR(d.eg_meijer, lot.true_eg(), 0.15);
    EXPECT_GT(d.eg_classical, 1.0);
    EXPECT_LT(d.eg_classical, 1.6);
    EXPECT_GT(d.xti_meijer, -2.0);
    EXPECT_LT(d.xti_meijer, 8.0);
    ASSERT_EQ(d.cell.size(), 3u);
    // PTAT dVBE rises with temperature.
    EXPECT_LT(d.cell[0].delta_vbe, d.cell[2].delta_vbe);
  }

  const LotSummary s = LotCampaign::summarise(dies);
  EXPECT_EQ(s.dies_ok, 4);
  EXPECT_EQ(s.dies_failed, 0);
  EXPECT_EQ(s.eg_meijer.count, 4u);
  EXPECT_GE(s.eg_meijer.max, s.eg_meijer.q90);
  EXPECT_GE(s.eg_meijer.q90, s.eg_meijer.q50);
  EXPECT_GE(s.eg_meijer.q50, s.eg_meijer.q10);
  EXPECT_GE(s.eg_meijer.q10, s.eg_meijer.min);
  EXPECT_GE(s.eg_meijer.stddev, 0.0);
}

TEST(LotStatisticTest, UsesSampleStandardDeviation) {
  // The lot is a sample of the process, so the spread must be the
  // Bessel-corrected (/(N-1)) standard deviation, not the population
  // (/N) one the original implementation computed.
  const LotStatistic s = LotStatistic::of({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(5.0 / 3.0));  // not sqrt(1.25)
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);

  // Degenerate sizes must not divide by zero.
  EXPECT_DOUBLE_EQ(LotStatistic::of({7.0}).stddev, 0.0);
  EXPECT_EQ(LotStatistic::of({}).count, 0u);
}

TEST(LotCampaignTest, RejectsBadConfig) {
  LotCampaignConfig cfg;
  cfg.samples = 0;
  EXPECT_THROW((LotCampaign{SiliconLot{}, cfg}), Error);
  LotCampaignConfig two;
  two.cell_celsius = {0.0, 50.0};
  EXPECT_THROW((LotCampaign{SiliconLot{}, two}), Error);
}

}  // namespace
}  // namespace icvbe::lab
