// Tests for the SPICE netlist parser and model-card writer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "icvbe/common/constants.hpp"
#include "icvbe/spice/dc_solver.hpp"
#include "icvbe/spice/netlist.hpp"

namespace icvbe::spice {
namespace {

TEST(SpiceNumber, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("1e-15"), 1e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3.3E2"), -330.0);
}

TEST(SpiceNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("10MEG"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_number("47u"), 47e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1p"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("2f"), 2e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("1n"), 1e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("4g"), 4e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("1t"), 1e12);
}

TEST(SpiceNumber, SuffixesAreCaseInsensitiveBySpellingNotCase) {
  // MEG is mega and M is milli by SPELLING; case never changes meaning.
  EXPECT_DOUBLE_EQ(parse_spice_number("10MEG"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_number("10Meg"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_number("10meg"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_number("10M"), 10e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("10m"), 10e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5K"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("47U"), 47e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1N"), 1e-9);
}

TEST(SpiceNumber, UnitAnnotationsIgnored) {
  EXPECT_DOUBLE_EQ(parse_spice_number("5v"), 5.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("5V"), 5.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5kohm"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5KOhm"), 2500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("10uF"), 10e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("100nH"), 100e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("3kHz"), 3000.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.2megohm"), 2.2e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1ms"), 1e-3);
}

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_THROW((void)parse_spice_number("abc"), NetlistError);
  EXPECT_THROW((void)parse_spice_number(""), NetlistError);
}

TEST(SpiceNumber, RejectsAmbiguousTrailingSuffixes) {
  // A second scale factor after the first is ambiguous garbage, not a
  // unit ("10kk" used to silently parse as 10k).
  EXPECT_THROW((void)parse_spice_number("10kk"), NetlistError);
  EXPECT_THROW((void)parse_spice_number("10megmeg"), NetlistError);
  EXPECT_THROW((void)parse_spice_number("10km"), NetlistError);
  EXPECT_THROW((void)parse_spice_number("5x"), NetlistError);
  EXPECT_THROW((void)parse_spice_number("1kbogus"), NetlistError);
}

TEST(NetlistParser, ResistorDividerSolves) {
  const char* deck = R"(
* simple divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.TEMP 27
.END
)";
  auto parsed = parse_netlist(deck);
  EXPECT_TRUE(parsed.has_temp_directive);
  EXPECT_DOUBLE_EQ(parsed.temperature_celsius, 27.0);
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(x.node_voltage(c.node("mid")), 7.5, 1e-6);
}

TEST(NetlistParser, CommentsAndContinuations) {
  const char* deck =
      "* header comment\n"
      "V1 a 0 1 ; trailing comment\n"
      "R1 a\n"
      "+ 0 2k\n";
  auto parsed = parse_netlist(deck);
  auto& c = *parsed.circuit;
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(c.get<VoltageSource>("V1").current(x), -0.5e-3, 1e-9);
}

TEST(NetlistParser, ModelCardAndBjt) {
  const char* deck = R"(
.MODEL PNP8 PNP (IS=2e-16 BF=45 VAF=60 VAR=8 EG=1.132 XTI=3.6 TNOM=298.15)
IE 0 e 10u
Q1 0 0 e PNP8 AREA=1
)";
  auto parsed = parse_netlist(deck);
  ASSERT_TRUE(parsed.bjt_models.contains("PNP8"));
  EXPECT_EQ(parsed.bjt_models.at("PNP8").type, BjtModel::Type::kPnp);
  EXPECT_DOUBLE_EQ(parsed.bjt_models.at("PNP8").eg, 1.132);
  auto& c = *parsed.circuit;
  c.set_temperature(298.15);
  const Unknowns x = solve_dc_or_throw(c);
  // Diode-connected PNP at 10 uA: VEB ~ 0.62-0.68 V.
  EXPECT_GT(x.node_voltage(c.node("e")), 0.55);
  EXPECT_LT(x.node_voltage(c.node("e")), 0.75);
}

TEST(NetlistParser, ModelDefinedAfterUse) {
  const char* deck = R"(
D1 a 0 DX
I1 0 a 1m
.MODEL DX D (IS=1e-14)
)";
  auto parsed = parse_netlist(deck);
  auto& c = *parsed.circuit;
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(x.node_voltage(c.node("a")),
              thermal_voltage(300.15) * std::log(1e-3 / 1e-14), 1e-5);
}

TEST(NetlistParser, OpAmpAndVcvs) {
  const char* deck = R"(
V1 in 0 0.1
E1 e_out 0 in 0 20
U1 u_out in u_out GAIN=1e7 OFFSET=1m
RL1 e_out 0 10k
RL2 u_out 0 10k
)";
  auto parsed = parse_netlist(deck);
  auto& c = *parsed.circuit;
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(x.node_voltage(c.node("e_out")), 2.0, 1e-6);
  EXPECT_NEAR(x.node_voltage(c.node("u_out")), 0.101, 1e-5);
}

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_netlist("V1 a 0 1\nR1 a 0\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistParser, UnknownModelRejectedWithLine) {
  try {
    (void)parse_netlist("Q1 c b e NOPE\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
}

TEST(NetlistParser, UnknownElementRejected) {
  EXPECT_THROW((void)parse_netlist("Xsub a b c\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist(".WEIRD 1\n"), NetlistError);
}

TEST(NetlistParser, SubstrateNodeOption) {
  const char* deck = R"(
.MODEL N1 NPN (IS=1e-16 ISS=1e-15)
VB b 0 0.65
VC c 0 0.05
VS s 0 0
Q1 c b 0 N1 SUBSTRATE=s AREA=2
)";
  auto parsed = parse_netlist(deck);
  auto& c = *parsed.circuit;
  const Unknowns x = solve_dc_or_throw(c);
  auto& q = c.get<Bjt>("Q1");
  EXPECT_DOUBLE_EQ(q.area(), 2.0);
  // Saturated (VBC = +0.6): the BC-driven parasitic pushes current into
  // the substrate rail.
  EXPECT_GT(std::abs(q.currents(x).isub), 1e-10);
}

TEST(NetlistParser, ResistorTempcoFromDeck) {
  const char* deck = R"(
I1 0 n 1m
R1 n 0 1k TC1=2m
.TEMP 127
)";
  auto parsed = parse_netlist(deck);
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  const Unknowns x = solve_dc_or_throw(c);
  EXPECT_NEAR(x.node_voltage(c.node("n")), 1.2, 1e-4);
}

TEST(NetlistParser, NodesetDirective) {
  const char* deck = R"(
V1 a 0 1
R1 a b 1k
R2 b 0 1k
.NODESET V(b)=0.5 V(a)=1.0
)";
  auto parsed = parse_netlist(deck);
  ASSERT_EQ(parsed.nodesets.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.nodesets.at("b"), 0.5);
  EXPECT_DOUBLE_EQ(parsed.nodesets.at("a"), 1.0);
  EXPECT_THROW((void)parse_netlist(".NODESET V(b)\n"), NetlistError);
}

TEST(NetlistParser, DuplicateDeviceNameRejectedWithLine) {
  try {
    (void)parse_netlist("V1 a 0 1\nR1 a 0 1k\nR1 a 0 2k\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
  }
  // Semiconductor devices are instantiated after the .MODEL pass but must
  // still carry their own line in the error.
  try {
    (void)parse_netlist(
        ".MODEL DX D (IS=1e-14)\nD1 a 0 DX\nD1 a 0 DX\nI1 0 a 1m\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(NetlistParser, MalformedNodesetVariantsRejected) {
  EXPECT_THROW((void)parse_netlist(".NODESET V(b)\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist(".NODESET V(b)=\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist(".NODESET V(b)=abc\n"), NetlistError);
}

TEST(NetlistParser, DcDirectiveBuildsPlan) {
  const char* deck = R"(
V1 in 0 5
R1 in out 1k
R2 out 0 3k
.DC V1 0 2 0.5
.PROBE V(out) I(V1)
)";
  auto parsed = parse_netlist(deck);
  ASSERT_TRUE(parsed.plan.has_value());
  const AnalysisPlan& plan = *parsed.plan;
  ASSERT_EQ(plan.axes.size(), 1u);
  EXPECT_EQ(plan.axes[0].kind(), SweepAxis::Kind::kVsource);
  EXPECT_EQ(plan.axes[0].device(), "V1");
  const auto pts = plan.axes[0].grid().points();
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts[1], 0.5);
  ASSERT_EQ(plan.probes.size(), 2u);
  EXPECT_EQ(plan.probes[0].to_string(), "V(out)");
  EXPECT_EQ(plan.probes[1].to_string(), "I(V1)");
}

TEST(NetlistParser, DcTempAndTwoSpecNesting) {
  const char* deck = R"(
I1 0 n 1m
R1 n 0 1k TC1=2m
.DC TEMP 27 127 50 I1 1m 2m 1m
.PROBE V(n)
)";
  auto parsed = parse_netlist(deck);
  ASSERT_TRUE(parsed.plan.has_value());
  const AnalysisPlan& plan = *parsed.plan;
  // Second .DC spec is the outer axis; TEMP (first spec) is innermost.
  ASSERT_EQ(plan.axes.size(), 2u);
  EXPECT_EQ(plan.axes[0].kind(), SweepAxis::Kind::kIsource);
  EXPECT_EQ(plan.axes[1].kind(), SweepAxis::Kind::kTemperature);
  EXPECT_TRUE(plan.axes[1].celsius());
  EXPECT_EQ(plan.axes[1].label(), "TEMP");
  EXPECT_EQ(plan.axes[1].grid().points().size(), 3u);
}

TEST(NetlistParser, StepDirectiveForms) {
  auto lst = parse_netlist(
      "V1 a 0 1\nR1 a 0 1k\n.STEP R1 LIST 1k 2k 4k\n.DC V1 0 1 1\n"
      ".PROBE V(a)\n");
  ASSERT_TRUE(lst.plan.has_value());
  ASSERT_EQ(lst.plan->axes.size(), 2u);
  EXPECT_EQ(lst.plan->axes[0].kind(), SweepAxis::Kind::kResistor);
  EXPECT_EQ(lst.plan->axes[0].grid().points().size(), 3u);
  EXPECT_DOUBLE_EQ(lst.plan->axes[0].grid().points()[2], 4000.0);

  auto dec = parse_netlist(
      "I1 0 a 1m\nR1 a 0 1k\n.STEP I1 DEC 1u 1m 3\n.PROBE V(a)\n");
  ASSERT_TRUE(dec.plan.has_value());
  EXPECT_EQ(dec.plan->axes[0].grid().spacing(),
            SweepGrid::Spacing::kLogDecades);

  auto lin = parse_netlist(
      "V1 a 0 1\nR1 a 0 1k\n.STEP TEMP -50 125 25\n.PROBE V(a)\n");
  ASSERT_TRUE(lin.plan.has_value());
  EXPECT_EQ(lin.plan->axes[0].grid().points().size(), 8u);
}

TEST(NetlistParser, AnalysisDirectiveErrors) {
  // .DC/.STEP without .PROBE.
  EXPECT_THROW((void)parse_netlist("V1 a 0 1\nR1 a 0 1k\n.DC V1 0 1 1\n"),
               NetlistError);
  // Too many axes: .STEP + two .DC specs.
  EXPECT_THROW(
      (void)parse_netlist("V1 a 0 1\nV2 b 0 1\nR1 a b 1k\nR2 b 0 1k\n"
                          ".STEP TEMP 0 100 50\n.DC V1 0 1 1 V2 0 1 1\n"
                          ".PROBE V(b)\n"),
      NetlistError);
  // Unsweepable target.
  EXPECT_THROW((void)parse_netlist("V1 a 0 1\nR1 a 0 1k\n.DC Q1 0 1 1\n"
                                   ".PROBE V(a)\n"),
               NetlistError);
  // Increment pointing away from stop.
  EXPECT_THROW((void)parse_netlist("V1 a 0 1\nR1 a 0 1k\n.DC V1 0 1 -1\n"
                                   ".PROBE V(a)\n"),
               NetlistError);
  // Malformed probe expression carries the line.
  try {
    (void)parse_netlist("V1 a 0 1\nR1 a 0 1k\n.DC V1 0 1 1\n.PROBE V(a\n");
    FAIL() << "should have thrown";
  } catch (const NetlistError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
  // .PROBE with nothing to probe.
  EXPECT_THROW((void)parse_netlist(".PROBE\n"), NetlistError);
}

TEST(NetlistParser, CapacitorAndInductorCards) {
  auto parsed = parse_netlist(R"(
V1 in 0 5
R1 in out 1k
C1 out 0 10n IC=2.5
L1 out 0 4.7u
L2 out tap 1m IC=1m
.END
)");
  const auto& c1 = parsed.circuit->get<Capacitor>("C1");
  EXPECT_DOUBLE_EQ(c1.capacitance(), 10e-9);
  ASSERT_TRUE(c1.has_initial_condition());
  EXPECT_DOUBLE_EQ(c1.initial_condition(), 2.5);
  const auto& l1 = parsed.circuit->get<Inductor>("L1");
  EXPECT_DOUBLE_EQ(l1.inductance(), 4.7e-6);
  EXPECT_FALSE(l1.has_initial_condition());
  const auto& l2 = parsed.circuit->get<Inductor>("L2");
  EXPECT_DOUBLE_EQ(l2.initial_condition(), 1e-3);
  EXPECT_THROW((void)parse_netlist("C1 a 0\n"), NetlistError);
  EXPECT_THROW((void)parse_netlist("L1 a 0 -1u\n"), NetlistError);
}

TEST(NetlistParser, SourceWaveforms) {
  auto parsed = parse_netlist(R"(
V1 in 0 PULSE(0 1.8 1u 2u 2u 10u 20u)
V2 b 0 DC 0.75
I1 0 c SIN(1u 0.5u 1k)
V3 d 0 PWL(0 0 1m 1 2m 0)
R1 in 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
.END
)");
  const auto& v1 = parsed.circuit->get<VoltageSource>("V1");
  ASSERT_TRUE(v1.has_waveform());
  EXPECT_DOUBLE_EQ(v1.voltage(), 0.0);  // DC value = waveform at t = 0
  EXPECT_DOUBLE_EQ(v1.waveform().value_at(2e-6), 0.9);
  const auto& v2 = parsed.circuit->get<VoltageSource>("V2");
  EXPECT_FALSE(v2.has_waveform());
  EXPECT_DOUBLE_EQ(v2.voltage(), 0.75);
  const auto& i1 = parsed.circuit->get<CurrentSource>("I1");
  ASSERT_TRUE(i1.has_waveform());
  EXPECT_DOUBLE_EQ(i1.current(), 1e-6);
  const auto& v3 = parsed.circuit->get<VoltageSource>("V3");
  ASSERT_TRUE(v3.has_waveform());
  EXPECT_DOUBLE_EQ(v3.waveform().value_at(0.5e-3), 0.5);

  // Malformed waveforms fail with line context.
  EXPECT_THROW((void)parse_netlist("V1 a 0 PULSE(1)\nR1 a 0 1k\n"),
               NetlistError);
  EXPECT_THROW((void)parse_netlist("V1 a 0 DC 5 3.3\nR1 a 0 1k\n"),
               NetlistError);
  EXPECT_THROW((void)parse_netlist("V1 a 0 5 3.3\nR1 a 0 1k\n"),
               NetlistError);
  EXPECT_THROW((void)parse_netlist("V1 a 0 SIN(0 1)\nR1 a 0 1k\n"),
               NetlistError);
  EXPECT_THROW((void)parse_netlist("V1 a 0 PWL(0 1 2)\nR1 a 0 1k\n"),
               NetlistError);
  EXPECT_THROW((void)parse_netlist("V1 a 0 PWL(1 0 0.5 1)\nR1 a 0 1k\n"),
               NetlistError);
}

TEST(NetlistParser, TranDirectiveBuildsTransientPlan) {
  auto parsed = parse_netlist(R"(
V1 in 0 PULSE(0 1 0 1u)
R1 in out 1k
C1 out 0 1u
.IC V(out)=0.25
.TRAN 1u 2m 0.5m 5u UIC METHOD=BE
.PROBE V(out) I(C1)
.END
)");
  ASSERT_TRUE(parsed.plan.has_value());
  ASSERT_TRUE(parsed.plan->transient.has_value());
  const TransientSpec& spec = *parsed.plan->transient;
  EXPECT_DOUBLE_EQ(spec.tstep, 1e-6);
  EXPECT_DOUBLE_EQ(spec.tstop, 2e-3);
  EXPECT_DOUBLE_EQ(spec.tstart, 0.5e-3);
  EXPECT_DOUBLE_EQ(spec.tmax, 5e-6);
  EXPECT_TRUE(spec.uic);
  EXPECT_EQ(spec.method, IntegrationMethod::kBackwardEuler);
  ASSERT_EQ(spec.initial_conditions.size(), 1u);
  EXPECT_EQ(spec.initial_conditions[0].first, "out");
  EXPECT_DOUBLE_EQ(spec.initial_conditions[0].second, 0.25);
  EXPECT_TRUE(parsed.plan->axes.empty());
  ASSERT_EQ(parsed.plan->probes.size(), 2u);
  ASSERT_EQ(parsed.ics.size(), 1u);
}

TEST(NetlistParser, TranDirectiveErrors) {
  const char* body = "V1 a 0 1\nR1 a 0 1k\nC1 a 0 1u\n";
  auto deck = [&](const std::string& directives) {
    return std::string(body) + directives;
  };
  // No .PROBE.
  EXPECT_THROW((void)parse_netlist(deck(".TRAN 1u 1m\n")), NetlistError);
  // Bad numbers.
  EXPECT_THROW((void)parse_netlist(deck(".TRAN 0 1m\n.PROBE V(a)\n")),
               NetlistError);
  EXPECT_THROW((void)parse_netlist(deck(".TRAN 1u\n.PROBE V(a)\n")),
               NetlistError);
  EXPECT_THROW((void)parse_netlist(
                   deck(".TRAN 1u 1m METHOD=RK4\n.PROBE V(a)\n")),
               NetlistError);
  // Duplicate directive.
  EXPECT_THROW((void)parse_netlist(
                   deck(".TRAN 1u 1m\n.TRAN 2u 1m\n.PROBE V(a)\n")),
               NetlistError);
}

// ------------------------------------------------ multi-analysis decks ---

TEST(MultiAnalysisDeck, AllThreeFamiliesInPinnedCanonicalOrder) {
  // Cards deliberately in reverse canonical order: the plans vector must
  // still come out [DC sweep, TRAN, AC].
  const char* deck = R"(
V1 in 0 1 AC 1
R1 in out 1k
C1 out 0 1u
.AC DEC 5 1 1k
.TRAN 10u 1m
.DC V1 0 1 0.5
.PROBE V(out)
)";
  auto parsed = parse_netlist(deck);
  ASSERT_EQ(parsed.plans.size(), 3u);
  EXPECT_EQ(analysis_kind(parsed.plans[0]), AnalysisKind::kDcSweep);
  EXPECT_EQ(analysis_kind(parsed.plans[1]), AnalysisKind::kTransient);
  EXPECT_EQ(analysis_kind(parsed.plans[2]), AnalysisKind::kAc);
  EXPECT_EQ(parsed.plans[0].name, "deck:DC");
  EXPECT_EQ(parsed.plans[1].name, "deck:TRAN");
  EXPECT_EQ(parsed.plans[2].name, "deck:AC");
  // Legacy accessor stays the first plan.
  ASSERT_TRUE(parsed.plan.has_value());
  EXPECT_EQ(analysis_kind(*parsed.plan), AnalysisKind::kDcSweep);
  // find_plan resolves each family.
  ASSERT_NE(parsed.find_plan(AnalysisKind::kTransient), nullptr);
  EXPECT_TRUE(parsed.find_plan(AnalysisKind::kTransient)
                  ->transient.has_value());
  ASSERT_NE(parsed.find_plan(AnalysisKind::kAc), nullptr);
  EXPECT_TRUE(parsed.find_plan(AnalysisKind::kAc)->ac.has_value());
}

TEST(MultiAnalysisDeck, ProbesAreDomainFiltered) {
  // I(V1) cannot evaluate in .AC; VDB(out) cannot evaluate at a DC
  // operating point; V(out) rides everywhere.
  const char* deck = R"(
V1 in 0 1 AC 1
R1 in out 1k
C1 out 0 1u
.TRAN 10u 1m
.AC DEC 5 1 1k
.PROBE V(out) I(V1) VDB(out)
)";
  auto parsed = parse_netlist(deck);
  ASSERT_EQ(parsed.plans.size(), 2u);
  const AnalysisPlan* tran = parsed.find_plan(AnalysisKind::kTransient);
  const AnalysisPlan* ac = parsed.find_plan(AnalysisKind::kAc);
  ASSERT_NE(tran, nullptr);
  ASSERT_NE(ac, nullptr);
  ASSERT_EQ(tran->probes.size(), 2u);
  EXPECT_EQ(tran->probes[0].to_string(), "V(out)");
  EXPECT_EQ(tran->probes[1].to_string(), "I(V1)");
  ASSERT_EQ(ac->probes.size(), 2u);
  EXPECT_EQ(ac->probes[0].to_string(), "V(out)");
  EXPECT_EQ(ac->probes[1].to_string(), "VDB(out)");
}

TEST(MultiAnalysisDeck, AnalysisWithNoSupportedProbeIsAnError) {
  // Every .PROBE is AC-only, so the .TRAN plan would be empty.
  EXPECT_THROW((void)parse_netlist("V1 in 0 1 AC 1\nR1 in out 1k\n"
                                   "C1 out 0 1u\n.TRAN 10u 1m\n"
                                   ".AC DEC 5 1 1k\n.PROBE VDB(out)\n"),
               NetlistError);
  // And the mirror image: every .PROBE is DC-only for the .AC plan.
  EXPECT_THROW((void)parse_netlist("V1 in 0 1 AC 1\nR1 in out 1k\n"
                                   "C1 out 0 1u\n.TRAN 10u 1m\n"
                                   ".AC DEC 5 1 1k\n.PROBE I(V1)\n"),
               NetlistError);
}

TEST(MultiAnalysisDeck, SingleAnalysisDecksKeepTheLegacyShape) {
  auto parsed = parse_netlist("V1 a 0 1\nR1 a 0 1k\n.DC V1 0 1 0.5\n"
                              ".PROBE V(a) I(V1)\n");
  ASSERT_EQ(parsed.plans.size(), 1u);
  EXPECT_EQ(parsed.plans[0].name, "deck");
  ASSERT_TRUE(parsed.plan.has_value());
  EXPECT_EQ(parsed.plan->probes.size(), 2u);
  EXPECT_EQ(parsed.find_plan(AnalysisKind::kAc), nullptr);
}

TEST(MultiAnalysisDeck, EveryPlanExecutes) {
  // End-to-end: one deck, three plans, one warm session runs them all.
  const char* deck = R"(
V1 in 0 1 AC 1
R1 in out 1k
C1 out 0 1u
.DC V1 0 1 0.5
.TRAN 0.2m 2m
.AC DEC 5 1 1k
.PROBE V(out)
)";
  auto parsed = parse_netlist(deck);
  ASSERT_EQ(parsed.plans.size(), 3u);
  SimSession session(*parsed.circuit);
  for (const AnalysisPlan& plan : parsed.plans) {
    const SweepResult r = session.run(plan);
    EXPECT_GT(r.rows(), 0u) << plan.name;
  }
}

TEST(AnalysisKindTokens, RoundTripAndRejection) {
  EXPECT_STREQ(to_token(AnalysisKind::kDcSweep), "DC");
  EXPECT_STREQ(to_token(AnalysisKind::kTransient), "TRAN");
  EXPECT_STREQ(to_token(AnalysisKind::kAc), "AC");
  EXPECT_EQ(analysis_kind_from_token("dc"), AnalysisKind::kDcSweep);
  EXPECT_EQ(analysis_kind_from_token("Tran"), AnalysisKind::kTransient);
  EXPECT_EQ(analysis_kind_from_token("AC"), AnalysisKind::kAc);
  EXPECT_THROW((void)analysis_kind_from_token("NOISE"), PlanError);
}

TEST(ModelWriter, RoundTripsBjtCard) {
  BjtModel m;
  m.type = BjtModel::Type::kPnp;
  m.is = 2e-16;
  m.bf = 45.0;
  m.vaf = 60.0;
  m.var = 8.0;
  m.eg = 1.132;
  m.xti = 3.6;
  m.tnom = 298.15;
  m.iss_e = 1.4e-13;
  m.ns_e = 2.0;
  m.eg_sub_e = 1.632;
  m.bf_sub = 2.5;
  const std::string card = format_bjt_model("TRUTH", m);
  auto parsed = parse_netlist(card + "\n");
  ASSERT_TRUE(parsed.bjt_models.contains("TRUTH"));
  const BjtModel& r = parsed.bjt_models.at("TRUTH");
  EXPECT_DOUBLE_EQ(r.is, m.is);
  EXPECT_DOUBLE_EQ(r.bf, m.bf);
  EXPECT_DOUBLE_EQ(r.vaf, m.vaf);
  EXPECT_DOUBLE_EQ(r.eg, m.eg);
  EXPECT_DOUBLE_EQ(r.xti, m.xti);
  EXPECT_DOUBLE_EQ(r.iss_e, m.iss_e);
  EXPECT_DOUBLE_EQ(r.eg_sub_e, m.eg_sub_e);
  EXPECT_DOUBLE_EQ(r.bf_sub, m.bf_sub);
  EXPECT_EQ(r.type, BjtModel::Type::kPnp);
}

TEST(ModelWriter, InfinityDefaultsOmitted) {
  BjtModel m;  // vaf/var infinite
  const std::string card = format_bjt_model("M", m);
  EXPECT_EQ(card.find("VAF"), std::string::npos);
  EXPECT_EQ(card.find("VAR"), std::string::npos);
}

TEST(ModelWriter, DiodeCardRoundTrip) {
  DiodeModel m;
  m.is = 3e-15;
  m.n = 1.05;
  m.eg = 1.12;
  const std::string card = format_diode_model("DD", m);
  auto parsed = parse_netlist(card + "\n");
  ASSERT_TRUE(parsed.diode_models.contains("DD"));
  EXPECT_DOUBLE_EQ(parsed.diode_models.at("DD").is, 3e-15);
  EXPECT_DOUBLE_EQ(parsed.diode_models.at("DD").n, 1.05);
}

}  // namespace
}  // namespace icvbe::spice
