// Tests for icvbe/thermal: electro-thermal fixed point.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/thermal/electrothermal.hpp"

namespace icvbe::thermal {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::NodeId;

TEST(ElectroThermal, NoPowerMeansAmbient) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_isource("I1", kGround, a, 1e-9);
  c.add_resistor("R1", a, kGround, 1.0);
  ChipThermal chip;
  chip.rth_die = 500.0;
  auto r = solve_electrothermal(c, chip, 300.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.die_temperature, 300.0, 1e-3);
}

TEST(ElectroThermal, AuxPowerHeatsDie) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_isource("I1", kGround, a, 1e-9);
  c.add_resistor("R1", a, kGround, 1.0);
  ChipThermal chip;
  chip.rth_die = 400.0;
  chip.aux_power = 5e-3;  // 2 K of heating
  auto r = solve_electrothermal(c, chip, 300.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.die_temperature, 302.0, 1e-2);
}

TEST(ElectroThermal, ResistorPowerFeedsBack) {
  // 10 V across 1 k: 100 mW; with 100 K/W the die sits ~10 K hot. The
  // resistor has a positive tempco so the coupled answer is slightly less
  // power than the cold value -- the fixed point must account for it.
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 10.0);
  c.add_resistor("R1", a, kGround, 1e3, 2e-3, 0.0);
  ChipThermal chip;
  chip.rth_die = 100.0;
  chip.devices.push_back({"R1", 0.0});
  ElectroThermalOptions opt;
  auto r = solve_electrothermal(c, chip, to_kelvin(27.0), opt);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.die_temperature, to_kelvin(27.0) + 5.0);
  // Self-consistency: T = Tamb + Rth P(T).
  EXPECT_NEAR(r.die_temperature,
              to_kelvin(27.0) + chip.rth_die * r.total_power, 2e-3);
  // Power must reflect the hot resistance (less than the cold 100 mW, and
  // more than a crude double-counted estimate).
  EXPECT_LT(r.total_power, 0.100);
  EXPECT_GT(r.total_power, 0.090);
}

TEST(ElectroThermal, PerDeviceRthRaisesJunction) {
  Circuit c;
  const NodeId b = c.node("b");
  const NodeId col = c.node("c");
  c.add_vsource("VB", b, kGround, 0.65);
  c.add_vsource("VC", col, kGround, 3.0);
  spice::BjtModel m;
  m.is = 1e-16;
  m.bf = 100.0;
  c.add_bjt("Q1", col, b, kGround, m);
  ChipThermal chip;
  chip.rth_die = 0.0;
  chip.devices.push_back({"Q1", 2.0e4});  // poor junction-to-die path
  auto r = solve_electrothermal(c, chip, 300.0);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.device_temperature.at("Q1"), 300.0);
  EXPECT_NEAR(r.die_temperature, 300.0, 1e-6);
  // The hot junction conducts more at fixed VBE: a real electro-thermal
  // runaway direction, bounded here by the fixed point.
}

TEST(ElectroThermal, UnknownDeviceNameThrows) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_isource("I1", kGround, a, 1e-6);
  c.add_resistor("R1", a, kGround, 1e3);
  ChipThermal chip;
  chip.devices.push_back({"NOPE", 10.0});
  EXPECT_THROW((void)solve_electrothermal(c, chip, 300.0), CircuitError);
}

TEST(ElectroThermal, RejectsNonphysicalInputs) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_isource("I1", kGround, a, 1e-6);
  c.add_resistor("R1", a, kGround, 1e3);
  ChipThermal chip;
  EXPECT_THROW((void)solve_electrothermal(c, chip, -10.0), Error);
  chip.rth_die = -1.0;
  EXPECT_THROW((void)solve_electrothermal(c, chip, 300.0), Error);
}

}  // namespace
}  // namespace icvbe::thermal
