// Tests for spice::SimSession: golden equivalence against the legacy
// free-function path, warm-start continuation, topology-change guard, and
// the zero-allocation guarantee of the Newton inner loop (this binary
// links the icvbe_alloc_hook counting operator new/delete).

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/lab/silicon.hpp"
#include "icvbe/spice/analysis.hpp"
#include "icvbe/spice/circuit.hpp"
#include "icvbe/spice/dc_solver.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace icvbe::spice {
namespace {

void build_diode_rig(Circuit& c) {
  DiodeModel dm;
  dm.is = 1e-14;
  const NodeId in = c.node("in");
  const NodeId a = c.node("a");
  c.add_vsource("V1", in, kGround, 0.0);
  c.add_resistor("R1", in, a, 1e3);
  c.add_diode("D1", a, kGround, dm);
}

bandgap::TestCellParams nominal_cell_params() {
  const lab::SiliconLot lot;
  bandgap::TestCellParams p;
  p.qa_model = lot.truth().pnp;
  p.qb_model = lot.truth().pnp;
  return p;
}

TEST(SimSessionTest, SolveMatchesLegacySolver) {
  Circuit legacy;
  build_diode_rig(legacy);
  const Unknowns x_legacy = solve_dc_or_throw(legacy);

  Circuit c;
  build_diode_rig(c);
  SimSession session(c);
  const Unknowns& x_session = session.solve_or_throw();

  ASSERT_EQ(x_legacy.size(), x_session.size());
  for (std::size_t i = 0; i < x_legacy.size(); ++i) {
    EXPECT_NEAR(x_legacy.raw()[i], x_session.raw()[i], 1e-12) << "i=" << i;
  }
}

TEST(SimSessionTest, GoldenSweepMatchesLegacyVsourceSweep) {
  const auto values = linspace(0.0, 2.0, 41);

  Circuit legacy;
  build_diode_rig(legacy);
  const Series golden = dc_sweep_vsource(legacy, "V1", values,
                                         probe_node_voltage(legacy, "a"));

  Circuit c;
  build_diode_rig(c);
  auto& v1 = c.get<VoltageSource>("V1");
  SimSession session(c);
  const Series got =
      session.sweep(values, [&](double v) { v1.set_voltage(v); },
                    probe_node_voltage(c, "a"));

  ASSERT_EQ(golden.size(), got.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_NEAR(golden.y(i), got.y(i), 1e-12) << "point " << i;
  }
}

TEST(SimSessionTest, GoldenTemperatureSweepOnTestCell) {
  // The full bandgap test cell over temperature: the session path must
  // reproduce the legacy per-point path to <= 1e-12.
  const auto params = nominal_cell_params();
  const auto temps = linspace(to_kelvin(-40.0), to_kelvin(120.0), 9);

  // Legacy: fresh circuit + solve_cell_at(circuit, ...) per point.
  std::vector<double> golden;
  for (double t : temps) {
    Circuit c;
    const auto h = bandgap::build_test_cell(c, params);
    golden.push_back(bandgap::solve_cell_at(c, h, t).vref);
  }

  // Session with the legacy start policy (analytic guess at every point):
  // the reused workspace must reproduce the per-point path to <= 1e-12.
  Circuit c;
  const auto h = bandgap::build_test_cell(c, params);
  SimSession session(c);
  for (std::size_t i = 0; i < temps.size(); ++i) {
    session.invalidate_warm_start();  // same start point as the legacy path
    const auto obs = bandgap::solve_cell_at(session, h, temps[i]);
    EXPECT_NEAR(obs.vref, golden[i], 1e-12) << "T=" << temps[i];
  }

  // Warm-start continuation lands on the same operating point within the
  // Newton tolerance (different iterates, same solution).
  Circuit cw;
  const auto hw = bandgap::build_test_cell(cw, params);
  SimSession warm(cw);
  for (std::size_t i = 0; i < temps.size(); ++i) {
    const auto obs = bandgap::solve_cell_at(warm, hw, temps[i]);
    EXPECT_NEAR(obs.vref, golden[i], 1e-8) << "T=" << temps[i];
  }
}

TEST(SimSessionTest, WarmStartReducesIterations) {
  const auto params = nominal_cell_params();
  Circuit c;
  const auto h = bandgap::build_test_cell(c, params);
  SimSession session(c);

  (void)bandgap::solve_cell_at(session, h, 300.0);
  c.set_temperature(300.5);
  const int cold_like = session.solve().iterations;  // warm from 300.0
  EXPECT_TRUE(session.solve().converged);

  // A fresh cold session needs strictly more iterations than the warm
  // continuation half a kelvin away.
  Circuit c2;
  const auto h2 = bandgap::build_test_cell(c2, params);
  SimSession s2(c2);
  c2.set_temperature(300.5);
  const auto guess = bandgap::cell_initial_guess(c2, h2, 300.5);
  s2.seed_warm_start(guess);
  const int from_guess = s2.solve().iterations;
  EXPECT_LE(cold_like, from_guess);
}

TEST(SimSessionTest, TopologyChangeIsDetected) {
  Circuit c;
  build_diode_rig(c);
  SimSession session(c);
  EXPECT_TRUE(session.solve().converged);

  c.add_resistor("R2", c.node("a"), kGround, 1e6);
  EXPECT_THROW((void)session.solve(), CircuitError);
  session.rebind();
  EXPECT_TRUE(session.solve().converged);
}

TEST(SimSessionTest, SweepFailureThrowsWithContext) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add_vsource("V1", a, kGround, 1.0);
  c.add_vsource("V2", a, kGround, 2.0);  // conflicting ideal sources
  auto& v1 = c.get<VoltageSource>("V1");
  SimSession session(c);
  EXPECT_THROW((void)session.sweep({1.0}, [&](double v) { v1.set_voltage(v); },
                                   [](const Circuit&, const Unknowns&) {
                                     return 0.0;
                                   }),
               NumericalError);
}

TEST(SimSessionTest, ConstCircuitAccessInProbes) {
  Circuit c;
  build_diode_rig(c);
  c.get<VoltageSource>("V1").set_voltage(1.0);
  SimSession session(c);
  const Unknowns& x = session.solve_or_throw();

  const Circuit& cc = c;
  EXPECT_NE(cc.find("R1"), nullptr);
  EXPECT_EQ(cc.find("nope"), nullptr);
  const auto& r1 = cc.get<Resistor>("R1");
  EXPECT_GT(std::abs(r1.current(x)), 0.0);
  EXPECT_THROW((void)cc.get<VoltageSource>("R1"), CircuitError);
}

TEST(SimSessionTest, NewtonLoopIsAllocationFreeAfterSetup) {
  const auto params = nominal_cell_params();
  Circuit c;
  const auto h = bandgap::build_test_cell(c, params);
  SimSession session(c);

  // Warm-up: first solves populate every lazily-sized buffer (the analytic
  // startup guess keeps Newton out of the all-off basin).
  c.set_temperature(to_kelvin(25.0));
  session.seed_warm_start(bandgap::cell_initial_guess(c, h, to_kelvin(25.0)));
  ASSERT_TRUE(session.solve().converged);
  c.set_temperature(to_kelvin(26.0));
  ASSERT_TRUE(session.solve().converged);

  // Steady state: temperature steps + solves must not touch the heap.
  const std::uint64_t before = icvbe::testing::allocation_count();
  bool all_converged = true;
  double vref_sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    c.set_temperature(to_kelvin(25.0 + 0.5 * i));
    const DcResult& r = session.solve();
    all_converged = all_converged && r.converged;
    vref_sum += r.solution.node_voltage(1);
  }
  const std::uint64_t after = icvbe::testing::allocation_count();

  EXPECT_TRUE(all_converged);
  EXPECT_GT(std::abs(vref_sum), 0.0);
  EXPECT_EQ(after - before, 0u)
      << "SimSession::solve() allocated on the steady-state path";
}

}  // namespace
}  // namespace icvbe::spice
