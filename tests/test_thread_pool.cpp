// Tests for the shared threading primitives (common/thread_pool.hpp):
// fan_out semantics (inline serial path, exception rethrow, full-crew
// completion) and ThreadPool lifecycle (FIFO execution, submit-from-job,
// drain-on-stop, post-stop rejection, exception swallowing).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "icvbe/common/error.hpp"
#include "icvbe/common/thread_pool.hpp"

namespace icvbe::common {
namespace {

TEST(ResolveThreadCount, PassthroughAndHardwareFallback) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(FanOut, SerialRunsInlineOnCaller) {
  // threads <= 1 must run on the calling thread: the serial analysis
  // paths rely on inheriting the session's state without a handoff.
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen{};
  fan_out(1, [&]() { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(FanOut, RunsCallableOncePerWorker) {
  std::atomic<int> calls{0};
  fan_out(4, [&]() { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(FanOut, CounterPartitionCoversEveryIndexOnce) {
  // The canonical call shape: counter-pull partitioning over preallocated
  // slots. Every index must be computed exactly once.
  constexpr int kN = 1000;
  std::vector<int> slots(kN, -1);
  std::atomic<int> next{0};
  fan_out(8, [&]() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= kN) break;
      slots[static_cast<std::size_t>(i)] = i;
    }
  });
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(slots[static_cast<std::size_t>(i)], i);
  }
}

TEST(FanOut, RethrowsFirstExceptionAfterAllWorkersFinish) {
  // One worker throws; the others must still run to completion before the
  // exception surfaces in the caller.
  std::atomic<int> finished{0};
  std::atomic<int> thrown{0};
  std::string caught;
  try {
    fan_out(4, [&]() {
      if (thrown.fetch_add(1) == 0) {
        throw std::runtime_error("worker boom");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      finished.fetch_add(1);
    });
  } catch (const std::runtime_error& e) {
    caught = e.what();
  }
  EXPECT_EQ(caught, "worker boom");
  EXPECT_EQ(finished.load(), 3);
}

TEST(FanOut, SerialExceptionPropagatesDirectly) {
  EXPECT_THROW(fan_out(1, []() { throw Error("serial boom"); }), Error);
}

TEST(ThreadPool, DestructorDrainsAllQueuedJobs) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (int i = 1; i <= 100; ++i) {
      pool.submit([&sum, i]() { sum.fetch_add(i); });
    }
  }  // destructor drains
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, JobsMaySubmitFollowUpJobs) {
  // A running job may enqueue follow-up work (the server's run bodies do
  // this when a client pipelines requests).
  std::atomic<int> hits{0};
  {
    ThreadPool pool(2);
    pool.submit([&]() {
      hits.fetch_add(1);
      pool.submit([&]() { hits.fetch_add(1); });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(hits.load(), 2);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(1);
  pool.stop_and_join();
  EXPECT_THROW(pool.submit([]() {}), Error);
  pool.stop_and_join();  // idempotent
}

TEST(ThreadPool, StopRunsQueueDry) {
  // Queued-but-unstarted jobs still execute: queued runs owe their
  // clients a terminal protocol frame.
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  pool.submit([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ran.fetch_add(1);
  });
  for (int i = 0; i < 5; ++i) {
    pool.submit([&]() { ran.fetch_add(1); });
  }
  pool.stop_and_join();
  EXPECT_EQ(ran.load(), 6);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(pool.running(), 0u);
}

TEST(ThreadPool, ThrowingJobDoesNotKillItsWorker) {
  std::atomic<int> after{0};
  {
    ThreadPool pool(1);
    pool.submit([]() { throw std::runtime_error("job boom"); });
    pool.submit([&]() { after.fetch_add(1); });
  }
  EXPECT_EQ(after.load(), 1);
}

TEST(ThreadPool, ConcurrentSubmittersAllLand) {
  // Many threads hammering submit() concurrently (the server shape: one
  // reader thread per connection, all feeding one pool).
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&pool, &done]() {
        for (int i = 0; i < 250; ++i) {
          pool.submit([&done]() { done.fetch_add(1); });
        }
      });
    }
    for (auto& t : submitters) t.join();
  }
  EXPECT_EQ(done.load(), 1000);
}

}  // namespace
}  // namespace icvbe::common
