// Tests for the portable SIMD layer (common/simd.hpp) and the batched
// junction exponential (spice/junction.hpp): the vexp accuracy contract,
// pack-vs-scalar bit identity of every DPack op, and the element-wise
// equivalence of safe_exp_many with safe_exp that the batched device
// stamping path depends on. These hold in both ICVBE_SIMD builds.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "icvbe/common/simd.hpp"
#include "icvbe/spice/junction.hpp"

namespace {

using icvbe::common::DPack;
using icvbe::common::kPackWidth;
using icvbe::common::vexp;

std::uint64_t bits_of(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Distance in representable doubles between two same-sign finite values.
std::uint64_t ulp_diff(double a, double b) {
  const std::uint64_t ba = bits_of(a);
  const std::uint64_t bb = bits_of(b);
  if ((ba >> 63) != (bb >> 63)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return ba > bb ? ba - bb : bb - ba;
}

TEST(Vexp, MatchesStdExpWithinFourUlpOverFullRange) {
  // Dense deterministic sweep of the non-flushed domain plus a uniform
  // random fill; the documented bound is <= 4 ulp (measured ~1).
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> uni(-708.0, 709.7);
  std::uint64_t worst = 0;
  double worst_x = 0.0;
  auto check = [&](double x) {
    const double got = vexp(x);
    const double want = std::exp(x);
    if (want == 0.0 || !std::isfinite(want)) return;  // flush/overflow edge
    const std::uint64_t u = ulp_diff(got, want);
    if (u > worst) {
      worst = u;
      worst_x = x;
    }
  };
  for (double x = -708.0; x <= 709.7; x += 0.37) check(x);
  for (int i = 0; i < 20000; ++i) check(uni(rng));
  // The junction hot zone gets extra density: arguments a biased diode
  // actually produces (v/vt up to the safe_exp cap).
  std::uniform_real_distribution<double> hot(-50.0, 200.0);
  for (int i = 0; i < 20000; ++i) check(hot(rng));
  EXPECT_LE(worst, 4u) << "worst vexp ulp error at x = " << worst_x;
}

TEST(Vexp, EdgeCases) {
  EXPECT_EQ(vexp(0.0), 1.0);
  EXPECT_EQ(vexp(-0.0), 1.0);
  // Overflow saturates to +inf, like std::exp.
  EXPECT_EQ(vexp(710.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(vexp(1e9), std::numeric_limits<double>::infinity());
  EXPECT_EQ(vexp(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  // Below the smallest normal the contract is flush-to-zero (not a
  // subnormal), and -inf lands there too.
  EXPECT_EQ(vexp(-709.0), 0.0);
  EXPECT_EQ(vexp(-1e9), 0.0);
  EXPECT_EQ(vexp(-std::numeric_limits<double>::infinity()), 0.0);
  // NaN propagates.
  EXPECT_TRUE(std::isnan(vexp(std::numeric_limits<double>::quiet_NaN())));
  // Largest finite results: x just under the overflow threshold stays
  // finite (this is the case that needs the two-step 2^k scaling).
  EXPECT_TRUE(std::isfinite(vexp(709.78)));
  EXPECT_GT(vexp(709.78), 1e308);
}

TEST(Vexp, PackLanesBitIdenticalToScalar) {
  std::mt19937_64 rng(977);
  std::uniform_real_distribution<double> uni(-800.0, 800.0);
  double in[kPackWidth];
  double out[kPackWidth];
  for (int trial = 0; trial < 5000; ++trial) {
    for (std::size_t l = 0; l < kPackWidth; ++l) in[l] = uni(rng);
    vexp(DPack::load(in)).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      EXPECT_EQ(bits_of(out[l]), bits_of(vexp(in[l])))
          << "lane " << l << " x = " << in[l];
    }
  }
}

TEST(DPack, OpsBitIdenticalToScalar) {
  std::mt19937_64 rng(31337);
  std::uniform_real_distribution<double> uni(-1e3, 1e3);
  double a[kPackWidth], b[kPackWidth], t[kPackWidth], f[kPackWidth];
  double out[kPackWidth];
  for (int trial = 0; trial < 2000; ++trial) {
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      a[l] = uni(rng);
      b[l] = uni(rng);
      t[l] = uni(rng);
      f[l] = uni(rng);
    }
    if (trial == 0) a[1] = std::numeric_limits<double>::quiet_NaN();
    const DPack pa = DPack::load(a);
    const DPack pb = DPack::load(b);

    (pa + pb).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      if (!std::isnan(a[l])) EXPECT_EQ(out[l], a[l] + b[l]);
    }
    (pa - pb).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      if (!std::isnan(a[l])) EXPECT_EQ(out[l], a[l] - b[l]);
    }
    (pa * pb).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      if (!std::isnan(a[l])) EXPECT_EQ(out[l], a[l] * b[l]);
    }
    (pa / pb).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      if (!std::isnan(a[l])) EXPECT_EQ(out[l], a[l] / b[l]);
    }
    DPack::abs(pa).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      EXPECT_EQ(bits_of(out[l]), bits_of(std::fabs(a[l])));
    }
    // min/max resolve a NaN lane to operand b (the comparison on a is
    // false); both DPack variants share that semantic.
    DPack::min(pa, pb).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      EXPECT_EQ(bits_of(out[l]), bits_of(a[l] < b[l] ? a[l] : b[l]));
    }
    DPack::max(pa, pb).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      EXPECT_EQ(bits_of(out[l]), bits_of(a[l] > b[l] ? a[l] : b[l]));
    }
    DPack::select_gt(pa, pb, DPack::load(t), DPack::load(f)).store(out);
    for (std::size_t l = 0; l < kPackWidth; ++l) {
      // NaN compares false, so the NaN lane must take f -- the property
      // safe_exp_many's clamp select relies on.
      EXPECT_EQ(bits_of(out[l]), bits_of(a[l] > b[l] ? t[l] : f[l]));
    }
  }
}

TEST(DPack, BroadcastZeroAndIndex) {
  const DPack z = DPack::zero();
  const DPack c = DPack::broadcast(2.5);
  for (std::size_t l = 0; l < kPackWidth; ++l) {
    EXPECT_EQ(z[l], 0.0);
    EXPECT_EQ(c[l], 2.5);
  }
}

TEST(SafeExpMany, ElementwiseBitIdenticalToSafeExp) {
  using icvbe::spice::safe_exp;
  using icvbe::spice::safe_exp_many;
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> uni(-300.0, 300.0);
  // Sizes straddle the pack width so both the vector body and the scalar
  // tail are exercised, including n < kPackWidth (pure tail) and n = 0.
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}, std::size_t{8},
                        std::size_t{11}, std::size_t{64}, std::size_t{257}}) {
    std::vector<double> x(n), out(n ? n : 1);
    for (auto& xi : x) xi = uni(rng);
    // Salt in the interesting points: the linearisation cap and beyond
    // (overflow-guard region), and huge negatives (flush region).
    if (n >= 8) {
      x[0] = 199.9999;
      x[1] = 200.0;
      x[2] = 200.0001;
      x[3] = 750.0;
      x[4] = -750.0;
      x[5] = 0.0;
    }
    safe_exp_many(x.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(bits_of(out[i]), bits_of(safe_exp(x[i])))
          << "n = " << n << " i = " << i << " x = " << x[i];
    }
  }
}

TEST(SafeExpMany, CustomCapAndNaN) {
  using icvbe::spice::safe_exp;
  using icvbe::spice::safe_exp_many;
  double x[8] = {9.9, 10.0, 10.1, -5.0, 0.0, 42.0,
                 std::numeric_limits<double>::quiet_NaN(), 3.0};
  double out[8];
  safe_exp_many(x, out, 8, 10.0);
  for (std::size_t i = 0; i < 8; ++i) {
    if (std::isnan(x[i])) {
      EXPECT_TRUE(std::isnan(out[i]));
    } else {
      EXPECT_EQ(bits_of(out[i]), bits_of(safe_exp(x[i], 10.0)));
    }
  }
  // Above the cap the continuation is linear in x: e^cap * (1 + x - cap).
  EXPECT_NEAR(out[2] - out[1], std::exp(10.0) * 0.1, 1e-9);
}

}  // namespace
