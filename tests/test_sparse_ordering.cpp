// Randomized property harness for the symbolic scale-up: AMD ordering,
// BTF decomposition, and the supernodal numeric kernel, checked against
// the legacy min-degree path and the dense LU on ~200 seeded patterns.
//
// Families: resistor-ladder shapes, 2-D meshes, random MNA shapes with
// zero-diagonal aux rows (voltage-source style), singular and
// near-singular value sets. Properties:
//  * amd_order() returns a valid permutation on every pattern;
//  * AMD fill stays within a slack factor of the legacy ordering's fill;
//  * refactor/solve under the new default path matches the legacy path
//    and the dense LU to <= 1e-10 (residual-checked when near-singular);
//  * batched lanes are bit-identical to scalar refactors per lane under
//    the new symbolic path (forced supernode coverage included);
//  * structurally/numerically singular systems throw NumericalError on
//    every path.
// A 1e4-node subset runs when ICVBE_SPARSE_STRESS=1 (CI stress job).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "icvbe/common/error.hpp"
#include "icvbe/linalg/matrix.hpp"
#include "icvbe/linalg/solve.hpp"
#include "icvbe/linalg/sparse.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace icvbe::linalg {
namespace {

constexpr double kAgreeTol = 1e-10;

struct TestSystem {
  std::size_t n = 0;
  SparseMatrix sparse;
  Matrix dense;
  bool expect_singular = false;
  bool near_singular = false;
};

using Entry = std::pair<std::pair<int, int>, double>;

TestSystem build(std::size_t n, const std::vector<Entry>& entries,
                 bool expect_singular = false, bool near_singular = false) {
  TestSystem sys;
  sys.n = n;
  sys.expect_singular = expect_singular;
  sys.near_singular = near_singular;
  sys.sparse.resize(n, n);
  sys.dense.resize(n, n);
  sys.dense.fill(0.0);
  for (const auto& [rc, v] : entries) {
    sys.sparse.add(static_cast<std::size_t>(rc.first),
                   static_cast<std::size_t>(rc.second), v);
    sys.dense(static_cast<std::size_t>(rc.first),
              static_cast<std::size_t>(rc.second)) += v;
  }
  sys.sparse.freeze_pattern();
  return sys;
}

double rnd(std::mt19937_64& rng, double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(rng);
}

/// Series/shunt conductance ladder with a voltage-source style aux row
/// (zero structural diagonal at the aux position).
TestSystem make_ladder(std::mt19937_64& rng, int nodes) {
  const int n = nodes + 1;  // + aux current
  std::vector<double> diag(static_cast<std::size_t>(nodes), 0.0);
  std::vector<Entry> e;
  for (int i = 0; i + 1 < nodes; ++i) {  // series links
    const double g = rnd(rng, 0.5, 2.0);
    e.push_back({{i, i + 1}, -g});
    e.push_back({{i + 1, i}, -g});
    diag[static_cast<std::size_t>(i)] += g;
    diag[static_cast<std::size_t>(i + 1)] += g;
  }
  for (int i = 0; i < nodes; ++i) {  // ground shunts keep it nonsingular
    e.push_back({{i, i}, diag[static_cast<std::size_t>(i)] +
                             rnd(rng, 0.05, 0.2)});
  }
  e.push_back({{0, nodes}, 1.0});  // voltage-source aux: zero diagonal
  e.push_back({{nodes, 0}, 1.0});
  return build(static_cast<std::size_t>(n), e);
}

/// g x g conductance grid, optionally with an aux row pinning one corner.
TestSystem make_mesh(std::mt19937_64& rng, int g, bool with_aux) {
  const int nn = g * g;
  const int n = nn + (with_aux ? 1 : 0);
  std::vector<double> diag(static_cast<std::size_t>(nn), 0.0);
  std::vector<Entry> e;
  auto idx = [g](int x, int y) { return x * g + y; };
  for (int x = 0; x < g; ++x) {
    for (int y = 0; y < g; ++y) {
      const int i = idx(x, y);
      diag[static_cast<std::size_t>(i)] += 1e-3 * rnd(rng, 0.5, 2.0);
      if (x + 1 < g) {
        const double c = rnd(rng, 0.5, 2.0);
        const int j = idx(x + 1, y);
        e.push_back({{i, j}, -c});
        e.push_back({{j, i}, -c});
        diag[static_cast<std::size_t>(i)] += c;
        diag[static_cast<std::size_t>(j)] += c;
      }
      if (y + 1 < g) {
        const double c = rnd(rng, 0.5, 2.0);
        const int j = idx(x, y + 1);
        e.push_back({{i, j}, -c});
        e.push_back({{j, i}, -c});
        diag[static_cast<std::size_t>(i)] += c;
        diag[static_cast<std::size_t>(j)] += c;
      }
    }
  }
  for (int i = 0; i < nn; ++i) {
    e.push_back({{i, i}, diag[static_cast<std::size_t>(i)]});
  }
  if (with_aux) {
    e.push_back({{0, nn}, 1.0});
    e.push_back({{nn, 0}, 1.0});
  }
  return build(static_cast<std::size_t>(n), e);
}

/// Random MNA shape: a random connected conductance graph over `nodes`
/// plus `naux` voltage-source style rows (zero structural diagonal,
/// coupling entries only). Diagonally dominant by construction, so the
/// result is comfortably nonsingular.
TestSystem make_random_mna(std::mt19937_64& rng, int nodes, int naux) {
  const int n = nodes + naux;
  std::vector<double> diag(static_cast<std::size_t>(nodes), 0.0);
  std::vector<Entry> e;
  for (int i = 1; i < nodes; ++i) {  // random spanning tree: connected
    const int j = static_cast<int>(rng() % static_cast<std::uint64_t>(i));
    const double g = rnd(rng, 0.5, 2.0);
    e.push_back({{i, j}, -g});
    e.push_back({{j, i}, -g});
    diag[static_cast<std::size_t>(i)] += g;
    diag[static_cast<std::size_t>(j)] += g;
  }
  const int extra = nodes / 2;
  for (int k = 0; k < extra; ++k) {  // extra chords
    const int i = static_cast<int>(rng() % static_cast<std::uint64_t>(nodes));
    const int j = static_cast<int>(rng() % static_cast<std::uint64_t>(nodes));
    if (i == j) continue;
    const double g = rnd(rng, 0.5, 2.0);
    e.push_back({{i, j}, -g});
    e.push_back({{j, i}, -g});
    diag[static_cast<std::size_t>(i)] += g;
    diag[static_cast<std::size_t>(j)] += g;
  }
  for (int i = 0; i < nodes; ++i) {
    e.push_back({{i, i}, diag[static_cast<std::size_t>(i)] +
                             1e-4 * rnd(rng, 0.5, 2.0)});
  }
  // Zero-diagonal aux rows on *distinct* nodes (two sources pinning the
  // same node would be genuinely structurally singular).
  std::vector<int> picks(static_cast<std::size_t>(nodes));
  std::iota(picks.begin(), picks.end(), 0);
  for (int a = 0; a < naux; ++a) {
    const std::size_t j =
        static_cast<std::size_t>(a) +
        rng() % static_cast<std::uint64_t>(nodes - a);
    std::swap(picks[static_cast<std::size_t>(a)], picks[j]);
    const int node = picks[static_cast<std::size_t>(a)];
    e.push_back({{node, nodes + a}, 1.0});
    e.push_back({{nodes + a, node}, 1.0});
  }
  return build(static_cast<std::size_t>(n), e);
}

/// Numerically singular: two rows with proportional values (rank
/// deficient, structurally fine).
TestSystem make_numerically_singular(std::mt19937_64& rng, int nodes) {
  TestSystem sys = make_random_mna(rng, nodes, 0);
  // Rebuild with row 1 = 2 * row 0's values on the union pattern.
  std::vector<Entry> e;
  const auto& rp = sys.sparse.row_ptr();
  const auto& ci = sys.sparse.col_index();
  const auto& v = sys.sparse.values();
  for (std::size_t r = 0; r < sys.n; ++r) {
    for (int i = rp[r]; i < rp[r + 1]; ++i) {
      if (r == 1) continue;
      e.push_back({{static_cast<int>(r), ci[static_cast<std::size_t>(i)]},
                   v[static_cast<std::size_t>(i)]});
    }
  }
  for (int i = rp[0]; i < rp[1]; ++i) {  // row 1 := 2 x row 0
    e.push_back({{1, ci[static_cast<std::size_t>(i)]},
                 2.0 * v[static_cast<std::size_t>(i)]});
  }
  return build(sys.n, e, /*expect_singular=*/true);
}

/// Structurally singular: two rows whose only entries share one column
/// (no perfect matching).
TestSystem make_structurally_singular(std::mt19937_64& rng, int nodes) {
  TestSystem sys = make_random_mna(rng, nodes, 0);
  std::vector<Entry> e;
  const auto& rp = sys.sparse.row_ptr();
  const auto& ci = sys.sparse.col_index();
  const auto& v = sys.sparse.values();
  for (std::size_t r = 2; r < sys.n; ++r) {
    for (int i = rp[r]; i < rp[r + 1]; ++i) {
      e.push_back({{static_cast<int>(r), ci[static_cast<std::size_t>(i)]},
                   v[static_cast<std::size_t>(i)]});
    }
  }
  e.push_back({{0, 5}, rnd(rng, 0.5, 2.0)});
  e.push_back({{1, 5}, rnd(rng, 0.5, 2.0)});
  return build(sys.n, e, /*expect_singular=*/true);
}

/// Near-singular: a well-formed mesh with the last row and column scaled
/// down by 1e-4 each (the trailing diagonal lands at 1e-8 of its
/// neighbours). Solvable, but ill-conditioned enough that only the
/// residual (not the forward error vs dense) is a stable contract.
TestSystem make_near_singular(std::mt19937_64& rng, int g) {
  TestSystem sys = make_mesh(rng, g, /*with_aux=*/false);
  std::vector<Entry> e;
  const auto& rp = sys.sparse.row_ptr();
  const auto& ci = sys.sparse.col_index();
  const auto& v = sys.sparse.values();
  const int last = static_cast<int>(sys.n) - 1;
  for (std::size_t r = 0; r < sys.n; ++r) {
    for (int i = rp[r]; i < rp[r + 1]; ++i) {
      double val = v[static_cast<std::size_t>(i)];
      if (static_cast<int>(r) == last) val *= 1e-4;
      if (ci[static_cast<std::size_t>(i)] == last) val *= 1e-4;
      e.push_back({{static_cast<int>(r), ci[static_cast<std::size_t>(i)]},
                   val});
    }
  }
  return build(sys.n, e, /*expect_singular=*/false, /*near_singular=*/true);
}

Vector random_rhs(std::mt19937_64& rng, std::size_t n) {
  Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rnd(rng, -1.0, 1.0);
  return b;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

/// ||Ax - b||_inf / (||A||_1 max|x| + ||b||_inf): the scale-free residual.
double rel_residual(const TestSystem& sys, const Vector& x, const Vector& b) {
  double rmax = 0.0;
  double xmax = 0.0;
  for (std::size_t i = 0; i < sys.n; ++i) xmax = std::max(xmax, std::abs(x[i]));
  double anorm = 0.0;
  for (std::size_t r = 0; r < sys.n; ++r) {
    double row = 0.0;
    double ax = 0.0;
    for (std::size_t c = 0; c < sys.n; ++c) {
      ax += sys.dense(r, c) * x[c];
      row += std::abs(sys.dense(r, c));
    }
    anorm = std::max(anorm, row);
    rmax = std::max(rmax, std::abs(ax - b[r]));
  }
  return rmax / (anorm * xmax + 1.0 + std::abs(b[0]));
}

/// One property check: orders valid, fill within slack, solutions agree.
void check_system(const TestSystem& sys, std::mt19937_64& rng,
                  bool force_supernode) {
  const std::size_t n = sys.n;

  // amd_order is a valid permutation on every pattern, singular or not.
  const std::vector<int> order =
      amd_order(sys.sparse.row_ptr(), sys.sparse.col_index(), n);
  ASSERT_EQ(order.size(), n);
  std::vector<char> seen(n, 0);
  for (int v : order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, static_cast<int>(n));
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]) << "duplicate row in AMD";
    seen[static_cast<std::size_t>(v)] = 1;
  }

  SparseLuFactorization legacy;
  legacy.set_options(SparseOptions::legacy());
  SparseLuFactorization amd;
  if (force_supernode) {
    SparseOptions o;
    o.supernode_min = 8;
    o.supernode_density = 0.3;
    amd.set_options(o);
  }

  if (sys.expect_singular) {
    EXPECT_THROW(amd.refactor(sys.sparse), NumericalError);
    EXPECT_THROW(legacy.refactor(sys.sparse), NumericalError);
    return;
  }

  ASSERT_NO_THROW(amd.refactor(sys.sparse));
  ASSERT_NO_THROW(legacy.refactor(sys.sparse));

  // Fill: AMD within slack of the legacy exact-minimum-degree order.
  EXPECT_LE(amd.factor_nonzeros(),
            static_cast<std::size_t>(
                1.5 * static_cast<double>(legacy.factor_nonzeros()) +
                4.0 * static_cast<double>(n)))
      << "AMD fill blew past the legacy ordering";

  const Vector b = random_rhs(rng, n);
  const Vector xa = amd.solve(b);
  const Vector xl = legacy.solve(b);

  // Residuals hold even when near-singular.
  EXPECT_LT(rel_residual(sys, xa, b), kAgreeTol);
  EXPECT_LT(rel_residual(sys, xl, b), kAgreeTol);

  if (!sys.near_singular) {
    LuFactorization dl;
    dl.refactor(sys.dense);
    Vector xd = b;
    dl.solve_in_place(xd);
    double scale = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      scale = std::max(scale, std::abs(xd[i]));
    }
    EXPECT_LT(max_abs_diff(xa, xd) / scale, kAgreeTol)
        << "AMD path diverged from dense LU";
    EXPECT_LT(max_abs_diff(xl, xd) / scale, kAgreeTol)
        << "legacy path diverged from dense LU";
    EXPECT_LT(max_abs_diff(xa, xl) / scale, kAgreeTol)
        << "AMD path diverged from legacy ordering";
  }

  // Cached analysis is reused across same-pattern refactors.
  const int analyses = amd.analysis_count();
  amd.refactor(sys.sparse);
  EXPECT_EQ(amd.analysis_count(), analyses);
}

TEST(SparseOrderingHarness, TwoHundredSeededPatterns) {
  std::mt19937_64 rng(20260808u);
  int case_id = 0;
  for (int rep = 0; rep < 25; ++rep) {
    const bool force_sn = (rep % 2) == 0;
    {
      SCOPED_TRACE("ladder case " + std::to_string(case_id++));
      TestSystem s = make_ladder(rng, 8 + static_cast<int>(rng() % 90));
      check_system(s, rng, force_sn);
    }
    {
      SCOPED_TRACE("mesh case " + std::to_string(case_id++));
      TestSystem s =
          make_mesh(rng, 3 + static_cast<int>(rng() % 8), (rep % 3) == 0);
      check_system(s, rng, force_sn);
    }
    {
      SCOPED_TRACE("random MNA case " + std::to_string(case_id++));
      TestSystem s = make_random_mna(rng, 10 + static_cast<int>(rng() % 80),
                                     static_cast<int>(rng() % 4));
      check_system(s, rng, force_sn);
    }
    {
      SCOPED_TRACE("random MNA (aux-heavy) case " + std::to_string(case_id++));
      TestSystem s = make_random_mna(rng, 10 + static_cast<int>(rng() % 40),
                                     2 + static_cast<int>(rng() % 5));
      check_system(s, rng, force_sn);
    }
    {
      SCOPED_TRACE("numerically singular case " + std::to_string(case_id++));
      TestSystem s =
          make_numerically_singular(rng, 12 + static_cast<int>(rng() % 30));
      check_system(s, rng, force_sn);
    }
    {
      SCOPED_TRACE("structurally singular case " + std::to_string(case_id++));
      TestSystem s =
          make_structurally_singular(rng, 12 + static_cast<int>(rng() % 30));
      check_system(s, rng, force_sn);
    }
    {
      SCOPED_TRACE("near-singular case " + std::to_string(case_id++));
      TestSystem s = make_near_singular(rng, 4 + static_cast<int>(rng() % 5));
      check_system(s, rng, force_sn);
    }
    {
      SCOPED_TRACE("tiny case " + std::to_string(case_id++));
      TestSystem s = make_random_mna(rng, 4 + static_cast<int>(rng() % 5), 0);
      check_system(s, rng, force_sn);
    }
  }
  EXPECT_EQ(case_id, 200);
}

TEST(SparseOrderingHarness, BatchLanesBitIdenticalUnderNewPath) {
  std::mt19937_64 rng(7u);
  for (int rep = 0; rep < 6; ++rep) {
    TestSystem sys = (rep % 2 == 0)
                         ? make_mesh(rng, 6 + rep, /*with_aux=*/true)
                         : make_random_mna(rng, 40 + 10 * rep, 2);
    const std::size_t n = sys.n;
    const std::size_t K = 3;

    SparseLuFactorization f;
    if (rep < 4) {
      SparseOptions o;  // force supernode coverage on most reps
      o.supernode_min = 8;
      o.supernode_density = 0.3;
      f.set_options(o);
    }
    f.refactor(sys.sparse);
    if (rep < 4) {
      ASSERT_GT(f.supernode_size(), 0u)
          << "forced supernode did not engage; test would not cover the "
             "dense batch kernel";
    }

    SparseValueBatch batch;
    batch.bind(sys.sparse, K);
    std::vector<SparseMatrix> lanes;
    for (std::size_t l = 0; l < K; ++l) {
      lanes.push_back(sys.sparse);
      // Perturb each lane's values deterministically (pattern fixed).
      lanes[l].add(0, 0, 1e-3 * static_cast<double>(l));
      batch.load_lane(l, lanes[l]);
    }
    std::vector<unsigned char> ok(K, 1);
    f.refactor_batch(batch, ok);
    for (std::size_t l = 0; l < K; ++l) ASSERT_TRUE(ok[l]);

    const Vector b = random_rhs(rng, n);
    std::vector<double> rhs(n * K);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t l = 0; l < K; ++l) rhs[i * K + l] = b[i];
    }
    f.solve_batch(rhs);

    for (std::size_t l = 0; l < K; ++l) {
      f.refactor(lanes[l]);
      const Vector x = f.solve(b);
      for (std::size_t i = 0; i < n; ++i) {
        const double batched = rhs[i * K + l];
        EXPECT_EQ(std::memcmp(&x[i], &batched, sizeof(double)), 0)
            << "lane " << l << " row " << i
            << " not bit-identical to scalar refactor";
      }
    }
    EXPECT_EQ(f.analysis_count(), 1) << "lane refactors must reuse analysis";
  }
}

TEST(SparseOrderingHarness, BatchSimdKernelBitIdenticalToScalarLaneKernel) {
  // A/B the two runtime batch kernels: the pack-vectorized lane kernel
  // (set_batch_simd(true), the default; K = 4/8 hit the compile-time-K
  // specializations, K = 3 the generic pack path) against the scalar
  // per-lane reference kernel (set_batch_simd(false), the PR-9 loops).
  // The contract is bitwise equality of the ok masks and every solution
  // bit, over the same pattern families the main harness uses. The
  // steady-state calls must also stay allocation-free (this binary links
  // icvbe_alloc_hook).
  std::mt19937_64 rng(20260808u ^ 0x51u);
  for (int rep = 0; rep < 8; ++rep) {
    TestSystem sys;
    switch (rep % 4) {
      case 0:
        sys = make_mesh(rng, 5 + rep, /*with_aux=*/true);
        break;
      case 1:
        sys = make_random_mna(rng, 30 + 10 * rep, 2);
        break;
      case 2:
        sys = make_ladder(rng, 20 + 10 * rep);
        break;
      default:
        sys = make_near_singular(rng, 5 + rep % 3);
        break;
    }
    const std::size_t n = sys.n;
    for (std::size_t K : {std::size_t{3}, std::size_t{4}, std::size_t{8}}) {
      SCOPED_TRACE("rep " + std::to_string(rep) + " K = " + std::to_string(K));

      SparseOptions o;  // force supernode coverage: the tiled kernel's
      o.supernode_min = 8;  // trailing update is the riskiest code path
      o.supernode_density = 0.3;

      SparseLuFactorization fs;  // SIMD lane kernel (default on)
      SparseLuFactorization fr;  // scalar reference lane kernel
      fr.set_batch_simd(false);
      fs.set_options(o);
      fr.set_options(o);
      fs.refactor(sys.sparse);
      fr.refactor(sys.sparse);

      SparseValueBatch bs;
      SparseValueBatch br;
      bs.bind(sys.sparse, K);
      br.bind(sys.sparse, K);
      std::vector<SparseMatrix> lanes;
      for (std::size_t l = 0; l < K; ++l) {
        lanes.push_back(sys.sparse);
        lanes[l].add(0, 0, 1e-3 * static_cast<double>(l));
        bs.load_lane(l, lanes[l]);
        br.load_lane(l, lanes[l]);
      }
      std::vector<unsigned char> ok_s(K, 1);
      std::vector<unsigned char> ok_r(K, 1);
      fs.refactor_batch(bs, ok_s);
      fr.refactor_batch(br, ok_r);
      ASSERT_EQ(ok_s, ok_r) << "pivot screening diverged between kernels";

      const Vector b = random_rhs(rng, n);
      std::vector<double> rhs_s(n * K);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t l = 0; l < K; ++l) rhs_s[i * K + l] = b[i];
      }
      std::vector<double> rhs_r = rhs_s;
      fs.solve_batch(rhs_s);
      fr.solve_batch(rhs_r);
      bool any_ok = false;
      for (std::size_t l = 0; l < K; ++l) {
        if (!ok_s[l]) continue;
        any_ok = true;
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(std::memcmp(&rhs_s[i * K + l], &rhs_r[i * K + l],
                                sizeof(double)),
                    0)
              << "lane " << l << " row " << i
              << " SIMD kernel not bit-identical to scalar lane kernel";
        }
      }
      if (rep % 4 != 3) ASSERT_TRUE(any_ok);

      // Steady state: re-running the batch at the same shape allocates
      // nothing on either kernel path.
      for (std::size_t l = 0; l < K; ++l) bs.load_lane(l, lanes[l]);
      std::fill(ok_s.begin(), ok_s.end(), 1);
      const std::uint64_t a0 = testing::allocation_count();
      fs.refactor_batch(bs, ok_s);
      fs.solve_batch(rhs_s);
      const std::uint64_t a1 = testing::allocation_count();
      EXPECT_EQ(a1 - a0, 0u)
          << "batched refactor/solve steady state allocated on the heap";
    }
  }
}

TEST(SparseOrderingHarness, BtfDecomposeBlockTriangularPattern) {
  // Hand-built 6x6 with two coupled pairs feeding a trailing pair:
  // rows {0,1} <-> cols {0,1}, rows {2,3} <-> cols {2,3} with a
  // dependency on block one, rows {4,5} close the chain.
  SparseMatrix m(6, 6);
  auto pair_block = [&](int r0) {
    m.add(r0, r0, 2.0);
    m.add(r0, r0 + 1, 1.0);
    m.add(r0 + 1, r0, 1.0);
    m.add(r0 + 1, r0 + 1, 2.0);
  };
  pair_block(0);
  pair_block(2);
  pair_block(4);
  m.add(0, 3, 0.5);  // block of rows {0,1} depends on block {2,3}
  m.add(2, 5, 0.5);  // block of rows {2,3} depends on block {4,5}
  m.freeze_pattern();

  const BtfDecomposition btf =
      btf_decompose(m.row_ptr(), m.col_index(), 6);
  ASSERT_EQ(btf.block_count(), 3u);
  // Every row maps to a block; each block has exactly the paired rows.
  EXPECT_EQ(btf.row_block[0], btf.row_block[1]);
  EXPECT_EQ(btf.row_block[2], btf.row_block[3]);
  EXPECT_EQ(btf.row_block[4], btf.row_block[5]);
  // Cross-block entries must point at *later* blocks (block upper
  // triangular): row 0 depends on rows {2,3}, which depend on {4,5}.
  EXPECT_LT(btf.row_block[0], btf.row_block[2]);
  EXPECT_LT(btf.row_block[2], btf.row_block[4]);
  // The diagonal is a perfect matching here.
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(btf.match_col[r], static_cast<int>(r));
  }

  // And the factorization solves it exactly like dense.
  Matrix d(6, 6, 0.0);
  const auto& rp = m.row_ptr();
  const auto& ci = m.col_index();
  const auto& v = m.values();
  for (std::size_t r = 0; r < 6; ++r) {
    for (int i = rp[r]; i < rp[r + 1]; ++i) {
      d(r, static_cast<std::size_t>(ci[static_cast<std::size_t>(i)])) =
          v[static_cast<std::size_t>(i)];
    }
  }
  SparseLuFactorization f;
  f.refactor(m);
  EXPECT_EQ(f.btf_block_count(), 3u);
  LuFactorization dl;
  dl.refactor(d);
  Vector b(6);
  for (std::size_t i = 0; i < 6; ++i) b[i] = 0.25 * static_cast<double>(i + 1);
  const Vector xs = f.solve(b);
  Vector xd = b;
  dl.solve_in_place(xd);
  EXPECT_LT(max_abs_diff(xs, xd), kAgreeTol);
}

TEST(SparseOrderingHarness, StructurallySingularThrowsBeforeNumericWork) {
  // A free column: no row ever touches column 2.
  SparseMatrix m(3, 3);
  m.add(0, 0, 1.0);
  m.add(1, 1, 1.0);
  m.add(2, 0, 1.0);
  m.add(2, 1, 1.0);
  m.freeze_pattern();
  EXPECT_THROW(
      btf_decompose(m.row_ptr(), m.col_index(), 3), NumericalError);
  SparseLuFactorization f;  // default path goes through BTF
  EXPECT_THROW(f.refactor(m), NumericalError);
}

TEST(SparseOrderingHarness, StressSubsetAt1e4Nodes) {
  const char* env = std::getenv("ICVBE_SPARSE_STRESS");
  if (env == nullptr || env[0] == '\0' || env[0] == '0') {
    GTEST_SKIP() << "set ICVBE_SPARSE_STRESS=1 for the 1e4-node subset";
  }
  std::mt19937_64 rng(99u);
  // 100 x 100 grid (10k nodes): AMD-only (legacy analysis takes ~seconds
  // here, which is the point of this PR). Build without the dense mirror.
  const int g = 100;
  const std::size_t n = static_cast<std::size_t>(g) * g;
  SparseMatrix m(n, n);
  std::vector<double> diag(n, 0.0);
  auto idx = [g](int x, int y) {
    return static_cast<std::size_t>(x * g + y);
  };
  for (int x = 0; x < g; ++x) {
    for (int y = 0; y < g; ++y) {
      const std::size_t i = idx(x, y);
      diag[i] += 1e-3 * rnd(rng, 0.5, 2.0);
      if (x + 1 < g) {
        const double c = rnd(rng, 0.5, 2.0);
        m.add(i, idx(x + 1, y), -c);
        m.add(idx(x + 1, y), i, -c);
        diag[i] += c;
        diag[idx(x + 1, y)] += c;
      }
      if (y + 1 < g) {
        const double c = rnd(rng, 0.5, 2.0);
        m.add(i, idx(x, y + 1), -c);
        m.add(idx(x, y + 1), i, -c);
        diag[i] += c;
        diag[idx(x, y + 1)] += c;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) m.add(i, i, diag[i]);
  m.freeze_pattern();

  SparseLuFactorization f;
  f.refactor(m);
  // Fill sanity: a 100x100 grid factors at ~45 entries/row under a good
  // ordering; 80/row flags an ordering-quality regression.
  EXPECT_LT(f.factor_nonzeros(), 80 * n);

  const Vector b = random_rhs(rng, n);
  const Vector x = f.solve(b);
  // Residual check against the CSR directly (no dense mirror at 10k).
  double rmax = 0.0;
  double xmax = 0.0;
  double anorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) xmax = std::max(xmax, std::abs(x[i]));
  const auto& rp = m.row_ptr();
  const auto& ci = m.col_index();
  const auto& v = m.values();
  for (std::size_t r = 0; r < n; ++r) {
    double ax = 0.0;
    double row = 0.0;
    for (int i = rp[r]; i < rp[r + 1]; ++i) {
      ax += v[static_cast<std::size_t>(i)] *
            x[static_cast<std::size_t>(ci[static_cast<std::size_t>(i)])];
      row += std::abs(v[static_cast<std::size_t>(i)]);
    }
    anorm = std::max(anorm, row);
    rmax = std::max(rmax, std::abs(ax - b[r]));
  }
  EXPECT_LT(rmax / (anorm * xmax), kAgreeTol);

  // Analysis reuse at scale.
  f.refactor(m);
  EXPECT_EQ(f.analysis_count(), 1);
}

}  // namespace
}  // namespace icvbe::linalg
