// Tests for the sub-1-V current-mode Banba cell (the paper's concluding
// "more accurate low voltage reference" extension).

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/bandgap/banba_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/error.hpp"
#include "icvbe/lab/silicon.hpp"
#include "icvbe/spice/dc_solver.hpp"

namespace icvbe::bandgap {
namespace {

BanbaCellParams nominal_params() {
  BanbaCellParams p;
  const auto truth = lab::ProcessTruth::nominal();
  p.qa_model = truth.pnp;
  p.qb_model = truth.pnp;
  // Keep the reference cell clean for the functional tests.
  p.qa_model.iss_e = p.qb_model.iss_e = 0.0;
  p.qa_model.iss = p.qb_model.iss = 0.0;
  p.pmos = banba_default_pmos();
  return p;
}

TEST(BanbaCell, OperatesBelowOneVolt) {
  BanbaCellParams p = nominal_params();
  spice::Circuit c;
  auto h = build_banba_cell(c, p);
  const auto obs = solve_banba_at(c, h, p, 298.15);
  // "more and more bandgap reference voltages operate down to 600 mV":
  // the current-mode output sits far below the 1.2 V classic value, from a
  // 1.0 V supply.
  EXPECT_GT(obs.vref, 0.35);
  EXPECT_LT(obs.vref, 0.75);
  EXPECT_LT(obs.vref, p.vdd);
}

TEST(BanbaCell, MatchesFirstOrderPrediction) {
  BanbaCellParams p = nominal_params();
  spice::Circuit c;
  auto h = build_banba_cell(c, p);
  const auto obs = solve_banba_at(c, h, p, 298.15);
  const double predicted = banba_ideal_vref(p, obs.v_branch, 298.15);
  EXPECT_NEAR(obs.vref, predicted, 0.05 * predicted);
}

TEST(BanbaCell, TemperatureStabilityIsBandgapClass) {
  BanbaCellParams p = nominal_params();
  spice::Circuit c;
  auto h = build_banba_cell(c, p);
  double vmin = 1e9, vmax = -1e9;
  for (double t = 233.15; t <= 398.15; t += 15.0) {
    const double v = solve_banba_at(c, h, p, t).vref;
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  // Untrimmed spread stays within ~2 % of the output over the military
  // range -- a functioning bandgap, not a divider.
  EXPECT_LT(vmax - vmin, 0.02 * vmax);
}

TEST(BanbaCell, R2ScalesOutputWithoutRetuning) {
  BanbaCellParams p = nominal_params();
  spice::Circuit c1, c2;
  auto h1 = build_banba_cell(c1, p, "bgb");
  const double v1 = solve_banba_at(c1, h1, p, 298.15).vref;
  BanbaCellParams p2 = p;
  p2.r2 = p.r2 * 0.5;
  auto h2 = build_banba_cell(c2, p2, "bgb");
  const double v2 = solve_banba_at(c2, h2, p2, 298.15).vref;
  EXPECT_NEAR(v2 / v1, 0.5, 0.03);
}

TEST(BanbaCell, BranchPotentialsForcedEqual) {
  // The op-amp forces the two branch heads together within gain error.
  BanbaCellParams p = nominal_params();
  spice::Circuit c;
  auto h = build_banba_cell(c, p);
  (void)solve_banba_at(c, h, p, 298.15);  // leaves the circuit at 298.15 K
  // Re-solve with the same warm-started path and inspect both heads.
  const auto obs = solve_banba_at(c, h, p, 298.15);
  spice::Circuit c2;
  auto h2 = build_banba_cell(c2, p);
  c2.set_temperature(298.15);
  const int n = c2.assign_unknowns();
  spice::Unknowns guess(static_cast<std::size_t>(n));
  auto set = [&](spice::NodeId node, double v) {
    if (node != spice::kGround) guess.raw()[node - 1] = v;
  };
  set(h2.vdd, p.vdd);
  set(h2.n1, obs.v_branch);
  set(h2.n2, obs.v_branch);
  set(c2.node("bgb.n2e"), obs.v_branch - 0.05);
  set(h2.vref, obs.vref);
  set(h2.gate, 0.35);
  const spice::Unknowns x = spice::solve_dc_or_throw(c2, {}, &guess);
  EXPECT_NEAR(x.node_voltage(h2.n1), x.node_voltage(h2.n2), 50e-6);
}

TEST(BanbaCell, ExtractedCardChangesPredictionVisibly) {
  // The point of the whole exercise: plugging a wrong (EG, XTI) couple
  // into the same deck moves the predicted low-voltage reference curve.
  BanbaCellParams good = nominal_params();
  BanbaCellParams bad = nominal_params();
  bad.qa_model.eg = bad.qb_model.eg = 1.27;   // a corrupted classical couple
  bad.qa_model.xti = bad.qb_model.xti = -3.0;
  spice::Circuit cg, cb;
  auto hg = build_banba_cell(cg, good);
  auto hb = build_banba_cell(cb, bad);
  double spread_good = 0.0, spread_bad = 0.0;
  double gmin = 1e9, gmax = -1e9, bmin = 1e9, bmax = -1e9;
  for (double t = 233.15; t <= 398.15; t += 33.0) {
    const double vg = solve_banba_at(cg, hg, good, t).vref;
    const double vb = solve_banba_at(cb, hb, bad, t).vref;
    gmin = std::min(gmin, vg);
    gmax = std::max(gmax, vg);
    bmin = std::min(bmin, vb);
    bmax = std::max(bmax, vb);
  }
  spread_good = gmax - gmin;
  spread_bad = bmax - bmin;
  // The corrupted card predicts a clearly different (worse) drift.
  EXPECT_GT(std::abs(spread_bad - spread_good), 1e-3);
}

TEST(BanbaCell, RejectsBadParameters) {
  BanbaCellParams p = nominal_params();
  p.vdd = 0.5;
  spice::Circuit c;
  EXPECT_THROW((void)build_banba_cell(c, p), Error);
}

}  // namespace
}  // namespace icvbe::bandgap
