// Tests for icvbe/lab: silicon lot, instruments, campaigns.

#include <gtest/gtest.h>

#include <cmath>

#include "icvbe/common/constants.hpp"
#include "icvbe/lab/campaign.hpp"
#include "icvbe/lab/instruments.hpp"
#include "icvbe/lab/silicon.hpp"

namespace icvbe::lab {
namespace {

TEST(SiliconLot, SamplesAreDeterministic) {
  SiliconLot lot;
  const DieSample a = lot.sample(3);
  const DieSample b = lot.sample(3);
  EXPECT_DOUBLE_EQ(a.qa.is, b.qa.is);
  EXPECT_DOUBLE_EQ(a.opamp_offset, b.opamp_offset);
  EXPECT_DOUBLE_EQ(a.fixture.leak, b.fixture.leak);
}

TEST(SiliconLot, SamplesDifferFromEachOther) {
  SiliconLot lot;
  const DieSample a = lot.sample(1);
  const DieSample b = lot.sample(2);
  EXPECT_NE(a.qa.is, b.qa.is);
  EXPECT_NE(a.opamp_offset, b.opamp_offset);
}

TEST(SiliconLot, PairMismatchIsSmall) {
  SiliconLot lot;
  for (int i = 0; i < 10; ++i) {
    const DieSample s = lot.sample(i);
    EXPECT_NEAR(s.qa.is / s.qb.is, 1.0, 0.03) << "sample " << i;
  }
}

TEST(SiliconLot, TrueParametersExposedForValidation) {
  SiliconLot lot;
  EXPECT_GT(lot.true_eg(), 1.0);
  EXPECT_LT(lot.true_eg(), 1.3);
  EXPECT_GT(lot.true_xti(), 0.5);
  EXPECT_LT(lot.true_xti(), 6.5);  // the Fig.-6 plotting window
}

TEST(FixtureThermalTest, LeakPullsTowardRoom) {
  FixtureThermal f;
  f.leak = 0.1;
  f.leak_tempco = 0.0;
  f.rth_die = 0.0;
  f.aux_power = 0.0;
  // Cold chamber: die above chamber; hot chamber: die below.
  EXPECT_GT(f.die_temperature(247.0, 0.0), 247.0);
  EXPECT_LT(f.die_temperature(348.0, 0.0), 348.0);
  // At room temperature the leak does nothing.
  EXPECT_NEAR(f.die_temperature(f.room_kelvin, 0.0), f.room_kelvin, 1e-12);
}

TEST(FixtureThermalTest, PowerAlwaysHeats) {
  FixtureThermal f;
  EXPECT_GT(f.die_temperature(300.0, 1e-3), f.die_temperature(300.0, 0.0));
}

TEST(Pt100, ErrorWithinSpec) {
  // "precision less than 1 degC": systematic offset draws stay within a
  // few sigma of the 0.4 K spec.
  int outside = 0;
  for (int i = 0; i < 50; ++i) {
    Pt100Sensor sensor(Rng::child(55, static_cast<std::uint64_t>(i)));
    const double err = sensor.read(300.0) - 300.0;
    if (std::abs(err) > 1.0) ++outside;
  }
  EXPECT_LE(outside, 5);
}

TEST(Pt100, SystematicOffsetIsStable) {
  Pt100Sensor sensor(Rng(9));
  double sum = 0.0;
  for (int i = 0; i < 200; ++i) sum += sensor.read(300.0) - 300.0;
  EXPECT_NEAR(sum / 200.0, sensor.systematic_offset(), 0.05);
}

TEST(Smu, VoltageErrorsAreMicrovoltScale) {
  SmuChannel smu(Rng(4));
  const double err = smu.measure_voltage(0.65) - 0.65;
  EXPECT_LT(std::abs(err), 300e-6);
}

TEST(Smu, CurrentGainErrorIsRelative) {
  SmuChannel smu(Rng(5));
  const double i1 = smu.measure_current(1e-6);
  EXPECT_NEAR(i1, 1e-6, 1e-8);
  const double i2 = smu.measure_current(1e-3);
  EXPECT_NEAR(i2, 1e-3, 1e-5);
}

TEST(Smu, ForceMirrorsMeasureErrors) {
  SmuChannel smu(Rng(6));
  EXPECT_NEAR(smu.force_voltage(0.6), 0.6, 3e-4);
  EXPECT_NEAR(smu.force_current(1e-5), 1e-5, 1e-7);
}

class LabCampaignTest : public ::testing::Test {
 protected:
  SiliconLot lot_;
};

TEST_F(LabCampaignTest, IdealVbeVsTemperatureMatchesTheory) {
  CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  DieSample s = lot_.sample(0);
  s.qin.iss_e = 0.0;  // pure eq.-(1) device
  s.qin.var = std::numeric_limits<double>::infinity();
  Laboratory lab(s, cfg);
  const auto pts = lab.vbe_vs_temperature(1e-6, {0.0, 25.0, 50.0});
  ASSERT_EQ(pts.size(), 3u);
  // Forced-current diode connection: VBE(T) strictly decreasing, sensor
  // equals die equals chamber in ideal mode.
  EXPECT_GT(pts[0].vbe, pts[1].vbe);
  EXPECT_GT(pts[1].vbe, pts[2].vbe);
  for (const auto& p : pts) {
    EXPECT_DOUBLE_EQ(p.t_sensor, p.t_die_true);
  }
}

TEST_F(LabCampaignTest, RealThermalSeparatesSensorFromDie) {
  CampaignConfig cfg;
  cfg.ideal_instruments = true;
  Laboratory lab(lot_.sample(1), cfg);
  const auto pts = lab.vbe_vs_temperature(1e-6, {-25.0, 75.0});
  // Cold: die above chamber; hot: die below (fixture leak).
  EXPECT_GT(pts[0].t_die_true, to_kelvin(-25.0));
  EXPECT_LT(pts[1].t_die_true, to_kelvin(75.0));
}

TEST_F(LabCampaignTest, IcVbeFamilyHasExponentialDecades) {
  CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  Laboratory lab(lot_.sample(0), cfg);
  const auto fam = lab.icvbe_family({25.0}, 0.3, 0.75, 10);
  ASSERT_EQ(fam.size(), 1u);
  const Series& s = fam[0];
  // ~60 mV per decade: 0.45 V of VBE span covers >= 6 decades.
  EXPECT_GT(s.max_y() / s.min_y(), 1e6);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GT(s.y(i), s.y(i - 1));
  }
}

TEST_F(LabCampaignTest, FamilyShiftsLeftWithTemperature) {
  CampaignConfig cfg;
  cfg.ideal_instruments = true;
  cfg.ideal_thermal = true;
  Laboratory lab(lot_.sample(0), cfg);
  const auto fam = lab.icvbe_family({-50.0, 125.0}, 0.4, 0.6, 5);
  // At the same VBE, the hot device carries far more current (Fig. 5's
  // leftward shift with temperature).
  EXPECT_GT(fam[1].y(2) / fam[0].y(2), 1e2);
}

TEST_F(LabCampaignTest, CellSweepProducesPtatDeltaVbe) {
  CampaignConfig cfg;
  cfg.ideal_instruments = true;
  Laboratory lab(lot_.sample(2), cfg);
  const auto sweep = lab.test_cell_sweep({-25.0, 25.0, 75.0});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].delta_vbe, sweep[1].delta_vbe);
  EXPECT_LT(sweep[1].delta_vbe, sweep[2].delta_vbe);
  // Near (kT/q) ln 8 at the die temperature.
  for (const auto& p : sweep) {
    EXPECT_NEAR(p.delta_vbe,
                thermal_voltage(p.t_die_true) * std::log(8.0), 1.5e-3);
  }
}

TEST_F(LabCampaignTest, VrefCurveIsReproducible) {
  CampaignConfig cfg;
  cfg.seed = 77;
  Laboratory lab1(lot_.sample(1), cfg);
  Laboratory lab2(lot_.sample(1), cfg);
  const auto a = lab1.vref_curve({-20.0, 25.0, 70.0});
  const auto b = lab2.vref_curve({-20.0, 25.0, 70.0});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.y(i), b.y(i));
  }
}

TEST_F(LabCampaignTest, MeasuredVrefRisesWithTemperature) {
  // The paper's Fig.-8 measured curve: a clear rise across the range
  // instead of the textbook bell.
  CampaignConfig cfg;
  Laboratory lab(lot_.sample(1), cfg);
  const auto curve = lab.vref_curve({-55.0, 0.0, 60.0, 125.0});
  EXPECT_GT(curve.y(3), curve.y(0) + 3e-3);
  EXPECT_GT(curve.y(1), curve.y(0));
}

TEST_F(LabCampaignTest, InstrumentNoiseVisibleButSmall) {
  CampaignConfig ideal;
  ideal.ideal_instruments = true;
  CampaignConfig real;
  real.seed = 123;
  Laboratory li(lot_.sample(3), ideal);
  Laboratory lr(lot_.sample(3), real);
  const auto pi = li.vbe_vs_temperature(1e-6, {25.0});
  const auto pr = lr.vbe_vs_temperature(1e-6, {25.0});
  const double dv = std::abs(pi[0].vbe - pr[0].vbe);
  EXPECT_GT(dv, 0.0);
  EXPECT_LT(dv, 1e-3);
}

TEST_F(LabCampaignTest, RejectsBadRequests) {
  CampaignConfig cfg;
  Laboratory lab(lot_.sample(0), cfg);
  EXPECT_THROW((void)lab.vbe_vs_temperature(-1e-6, {25.0}), Error);
  EXPECT_THROW((void)lab.icvbe_family({25.0}, 0.3, 0.8, 1), Error);
}

}  // namespace
}  // namespace icvbe::lab
