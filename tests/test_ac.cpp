// Small-signal (.AC) analysis acceptance suite:
//  * RC low-pass / RL high-pass magnitude, dB and phase against the
//    analytic transfer functions at <= 1e-10;
//  * the AC linearisation pinned to the DC Jacobian: the low-frequency
//    small-signal gain of a nonlinear divider must equal the numeric
//    derivative of the DC transfer curve (stamp_ac cannot drift from
//    stamp);
//  * dense-vs-sparse complex engines agree at <= 1e-10 on a generated
//    rc-ladder deck;
//  * an AC sweep performs zero heap allocations per frequency point after
//    setup (counting operator-new hook) and is bit-identical for any plan
//    thread count;
//  * AcSpec grids, AC probe parsing, the .AC card and the source AC spec.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/netlist_gen.hpp"
#include "icvbe/spice/plan.hpp"
#include "icvbe/spice/sim_session.hpp"
#include "icvbe/testing/alloc_hook.hpp"

namespace icvbe::spice {
namespace {

using Complex = linalg::Complex;

// ---------------------------------------------------------- AcSpec grid ---

TEST(AcSpec, DecadeGridHitsExactDecades) {
  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kDecade;
  spec.points = 2;
  spec.fstart = 1.0;
  spec.fstop = 100.0;
  const std::vector<double> f = spec.frequencies();
  ASSERT_EQ(f.size(), 5u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_NEAR(f[1], std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(f[2], 10.0, 1e-9);
  EXPECT_NEAR(f[4], 100.0, 1e-6);
}

TEST(AcSpec, OctaveAndLinearGrids) {
  AcSpec oct;
  oct.spacing = AcSpec::Spacing::kOctave;
  oct.points = 1;
  oct.fstart = 1.0;
  oct.fstop = 8.0;
  const std::vector<double> fo = oct.frequencies();
  ASSERT_EQ(fo.size(), 4u);
  EXPECT_NEAR(fo[3], 8.0, 1e-9);

  AcSpec lin;
  lin.spacing = AcSpec::Spacing::kLinear;
  lin.points = 5;
  lin.fstart = 10.0;
  lin.fstop = 50.0;
  const std::vector<double> fl = lin.frequencies();
  ASSERT_EQ(fl.size(), 5u);
  EXPECT_DOUBLE_EQ(fl[0], 10.0);
  EXPECT_DOUBLE_EQ(fl[2], 30.0);
  EXPECT_DOUBLE_EQ(fl[4], 50.0);
}

TEST(AcSpec, DegenerateSpecsThrow) {
  AcSpec spec;
  spec.points = 0;
  EXPECT_THROW((void)spec.frequencies(), PlanError);
  spec.points = 10;
  spec.fstart = 0.0;  // log grid needs fstart > 0
  spec.fstop = 100.0;
  EXPECT_THROW((void)spec.frequencies(), PlanError);
  spec.fstart = 100.0;
  spec.fstop = 1.0;
  EXPECT_THROW((void)spec.frequencies(), PlanError);
  // f = 0 is the DC operating point, not an AC point -- on ANY grid.
  spec.spacing = AcSpec::Spacing::kLinear;
  spec.fstart = 0.0;
  spec.fstop = 100.0;
  EXPECT_THROW((void)spec.frequencies(), PlanError);
}

// ------------------------------------------- analytic transfer functions ---

/// AC plan over the probes, gmin_floor 0 so the analytic comparisons are
/// exact (the default 1e-12 diagonal perturbs a 1 kOhm divider at 1e-9).
AnalysisPlan ac_plan(AcSpec spec, const std::vector<std::string>& probes) {
  AnalysisPlan plan;
  plan.name = "ac-test";
  plan.ac = spec;
  for (const std::string& p : probes) plan.probes.push_back(parse_probe(p));
  plan.options.gmin_floor = 0.0;
  return plan;
}

TEST(AcAnalysis, RcLowpassMatchesAnalyticTransfer) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  VoltageSource& v1 = c.add_vsource("V1", in, kGround, 0.0);
  v1.set_ac(1.0);
  c.add_resistor("R1", in, out, 1.0e3);
  c.add_capacitor("C1", out, kGround, 1.0e-6);

  SimSession session(c);
  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kDecade;
  spec.points = 10;
  spec.fstart = 1.0;
  spec.fstop = 1.0e6;
  const SweepResult r =
      session.run(ac_plan(spec, {"VM(out)", "VDB(out)", "VP(out)"}));

  const double rc = 1.0e3 * 1.0e-6;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const double f = r.axis_value(0, i);
    const Complex h = 1.0 / Complex(1.0, 2.0 * M_PI * f * rc);
    EXPECT_NEAR(r.value(0, i), std::abs(h), 1e-10) << "VM at " << f;
    EXPECT_NEAR(r.value(1, i), 20.0 * std::log10(std::abs(h)), 1e-10)
        << "VDB at " << f;
    EXPECT_NEAR(r.value(2, i), std::arg(h) * 180.0 / M_PI, 1e-10)
        << "VP at " << f;
  }
}

TEST(AcAnalysis, RlHighpassMatchesAnalyticTransfer) {
  // Exercises the inductor's aux-row reactance: H = jwL / (R + jwL).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  VoltageSource& v1 = c.add_vsource("V1", in, kGround, 0.0);
  v1.set_ac(1.0);
  c.add_resistor("R1", in, out, 50.0);
  c.add_inductor("L1", out, kGround, 1.0e-3);

  SimSession session(c);
  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kDecade;
  spec.points = 7;
  spec.fstart = 10.0;
  spec.fstop = 1.0e6;
  const SweepResult r = session.run(ac_plan(spec, {"VM(out)", "VP(out)"}));
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const double f = r.axis_value(0, i);
    const Complex jwl(0.0, 2.0 * M_PI * f * 1.0e-3);
    const Complex h = jwl / (50.0 + jwl);
    EXPECT_NEAR(r.value(0, i), std::abs(h), 1e-10) << "VM at " << f;
    EXPECT_NEAR(r.value(1, i), std::arg(h) * 180.0 / M_PI, 1e-10)
        << "VP at " << f;
  }
}

TEST(AcAnalysis, DifferentialAcProbeReadsThePhasorDifference) {
  // VDB(a,b) must scalarise V(a) - V(b) as one phasor, not subtract two
  // magnitudes.
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  VoltageSource& v1 = c.add_vsource("V1", in, kGround, 0.0);
  v1.set_ac(1.0);
  c.add_resistor("R1", in, out, 1.0e3);
  c.add_capacitor("C1", out, kGround, 1.0e-6);

  SimSession session(c);
  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kLinear;
  spec.points = 3;
  spec.fstart = 50.0;
  spec.fstop = 500.0;
  const SweepResult r =
      session.run(ac_plan(spec, {"VM(in,out)", "VP(in,out)", "V(in,out)"}));
  const double rc = 1.0e-3;
  for (std::size_t i = 0; i < r.rows(); ++i) {
    const double f = r.axis_value(0, i);
    const Complex jwrc(0.0, 2.0 * M_PI * f * rc);
    const Complex h = jwrc / (1.0 + jwrc);  // voltage across the resistor
    EXPECT_NEAR(r.value(0, i), std::abs(h), 1e-10);
    EXPECT_NEAR(r.value(1, i), std::arg(h) * 180.0 / M_PI, 1e-10);
    // Bare V(a,b) in the AC domain is the differential phasor's
    // magnitude |V(a)-V(b)| -- NOT |V(a)| - |V(b)| (which here would be
    // 1 - |H_lowpass|, a different number at every mid-band point).
    EXPECT_NEAR(r.value(2, i), std::abs(h), 1e-10);
    EXPECT_GT(std::abs(r.value(2, i) -
                       (1.0 - std::abs(1.0 / (1.0 + jwrc)))),
              1e-3)
        << "differential probe degenerated to magnitude subtraction";
  }
}

TEST(AcAnalysis, OpAmpFollowerHasUnityGain) {
  // Op-amp small-signal stamp: a unity follower's gain is G/(1+G).
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  VoltageSource& v1 = c.add_vsource("V1", in, kGround, 0.5);
  v1.set_ac(1.0);
  c.add_opamp("U1", out, in, out, 1.0e6, 0.01);  // offset must not leak in

  SimSession session(c);
  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kLinear;
  spec.points = 1;
  spec.fstart = 1.0e3;
  spec.fstop = 1.0e3;
  const SweepResult r = session.run(ac_plan(spec, {"VM(out)"}));
  EXPECT_NEAR(r.value(0, 0), 1.0e6 / (1.0 + 1.0e6), 1e-12);
}

// ------------------------------------- AC Jacobian == DC Jacobian at OP ---

TEST(AcAnalysis, LowFrequencySmallSignalGainEqualsDcDerivative) {
  // A nonlinear divider (resistor into a diode) has small-signal gain
  // dV(mid)/dV(in) at the OP. stamp_ac writes the device Jacobians
  // directly; the DC path reaches the same derivative only through
  // converged Newton solves -- agreement pins the two linearisations
  // together.
  const char* deck_text =
      "V1 in 0 DC 0.8 AC 1\n"
      "R1 in mid 1k\n"
      "D1 mid 0 DMOD\n"
      ".MODEL DMOD D (IS=1e-14 N=1.0)\n";
  auto parsed = parse_netlist(deck_text);
  Circuit& c = *parsed.circuit;
  SimSession session(c);
  (void)session.solve_or_throw();

  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kLinear;
  spec.points = 1;
  spec.fstart = 1.0e-3;  // no reactances anywhere: any frequency is "DC"
  spec.fstop = 1.0e-3;
  AnalysisPlan plan;
  plan.ac = spec;
  plan.probes.push_back(parse_probe("VM(mid)"));
  const double ac_gain = session.run(plan).value(0, 0);

  auto solve_mid = [&](double vin) {
    c.get<VoltageSource>("V1").set_voltage(vin);
    const Unknowns& x = session.solve_or_throw();
    return x.node_voltage(c.find_node("mid"));
  };
  const double h = 1.0e-7;
  const double numeric = (solve_mid(0.8 + h) - solve_mid(0.8 - h)) / (2.0 * h);
  EXPECT_NEAR(ac_gain, numeric, 1e-6 * std::abs(numeric) + 1e-12);
}

// --------------------------------------------- dense vs sparse complex ---

TEST(AcAnalysis, DenseAndSparseAgreeOnGeneratedLadderDeck) {
  SyntheticNetlistSpec spec;
  spec.topology = SyntheticTopology::kRcLadder;
  spec.nodes = 200;
  spec.seed = 11;
  spec.ac_analysis = true;
  auto parsed = parse_netlist(generate_netlist(spec));
  ASSERT_TRUE(parsed.plan.has_value());
  ASSERT_TRUE(parsed.plan->ac.has_value());

  // Compare the complex phasor (VR/VI) plus its magnitude at the far
  // node: the honest agreement metric is relative to the phasor size.
  AnalysisPlan plan = *parsed.plan;
  plan.probes.clear();
  const std::string far = generated_probe_node(spec);
  plan.probes.push_back(parse_probe("VR(" + far + ")"));
  plan.probes.push_back(parse_probe("VI(" + far + ")"));
  plan.probes.push_back(parse_probe("VM(" + far + ")"));

  auto run_with = [&](SparseMode mode) {
    auto fresh = parse_netlist(generate_netlist(spec));
    AnalysisPlan p = plan;
    p.options.sparse = mode;
    NewtonOptions session_options;
    session_options.sparse = mode;
    SimSession session(*fresh.circuit, session_options);
    return session.run(p);
  };
  const SweepResult dense = run_with(SparseMode::kDense);
  const SweepResult sparse = run_with(SparseMode::kSparse);

  ASSERT_EQ(dense.rows(), sparse.rows());
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    const double scale = std::max({1e-300, dense.value(2, i),
                                   sparse.value(2, i)});
    EXPECT_NEAR(dense.value(0, i), sparse.value(0, i), 1e-10 * scale)
        << "VR row " << i;
    EXPECT_NEAR(dense.value(1, i), sparse.value(1, i), 1e-10 * scale)
        << "VI row " << i;
  }
}

// ------------------------------- allocation and thread-count guarantees ---

TEST(AcAnalysis, SweepIsAllocationFreePerPointAfterSetup) {
  for (const SparseMode mode : {SparseMode::kDense, SparseMode::kSparse}) {
    SyntheticNetlistSpec spec;
    spec.topology = SyntheticTopology::kRcLadder;
    spec.nodes = 80;
    spec.seed = 5;
    spec.ac_analysis = true;
    auto parsed = parse_netlist(generate_netlist(spec));
    NewtonOptions options;
    options.sparse = mode;
    SimSession session(*parsed.circuit, options);
    (void)session.solve_or_throw();

    // Setup: the first call materialises the complex engine (and for the
    // sparse engine runs pattern discovery + the symbolic analysis).
    (void)session.solve_ac(2.0 * M_PI * 10.0);

    const std::uint64_t before = testing::allocation_count();
    for (int k = 1; k <= 40; ++k) {
      (void)session.solve_ac(2.0 * M_PI * 10.0 * k);
    }
    const std::uint64_t after = testing::allocation_count();
    EXPECT_EQ(after - before, 0u)
        << (mode == SparseMode::kSparse ? "sparse" : "dense")
        << " engine allocated per AC point";
  }
}

TEST(AcAnalysis, PlanIsBitIdenticalForAnyThreadCount) {
  SyntheticNetlistSpec spec;
  spec.topology = SyntheticTopology::kRcLadder;
  spec.nodes = 150;
  spec.seed = 23;
  spec.ac_analysis = true;

  // One fresh session per thread count: the claim is that the thread
  // count never changes the result, so every variant must start from the
  // same session state (a REUSED session re-solves its OP warm-started
  // from the previous run, which is continuation, not scheduling).
  std::vector<SweepResult> results;
  for (const unsigned threads : {1u, 2u, 5u}) {
    auto parsed = parse_netlist(generate_netlist(spec));
    ASSERT_TRUE(parsed.plan.has_value());
    AnalysisPlan plan = *parsed.plan;
    plan.threads = threads;
    SimSession session(*parsed.circuit);
    results.push_back(session.run(plan));
  }
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].rows(), results[0].rows());
    for (std::size_t p = 0; p < results[0].probe_count(); ++p) {
      for (std::size_t i = 0; i < results[0].rows(); ++i) {
        EXPECT_EQ(results[v].value(p, i), results[0].value(p, i))
            << "probe " << p << " row " << i << " variant " << v;
      }
    }
  }
}

// ---------------------------------------------- probes, cards, sources ---

TEST(AcProbes, ParseAndSerialiseRoundTrip) {
  for (const char* text : {"VM(out)", "VDB(out)", "VP(out)", "VR(out)",
                           "VI(out)", "VDB(a,b)", "(0-VDB(vref))"}) {
    const Probe p = parse_probe(text);
    EXPECT_EQ(parse_probe(p.to_string()).to_string(), p.to_string()) << text;
  }
  const Probe p = parse_probe("VDB(a,b)");
  ASSERT_EQ(p.kind(), Probe::Kind::kAcVoltage);
  EXPECT_EQ(p.ac_quantity(), Probe::AcQuantity::kDb);
  EXPECT_EQ(p.target(), "a");
  EXPECT_EQ(p.target2(), "b");
}

TEST(AcProbes, DomainMismatchesThrow) {
  Circuit c;
  const NodeId in = c.node("in");
  VoltageSource& v1 = c.add_vsource("V1", in, kGround, 1.0);
  v1.set_ac(1.0);
  c.add_resistor("R1", in, kGround, 1.0e3);
  SimSession session(c);

  // AC probe in a DC sweep: rejected at compile time.
  AnalysisPlan dc_plan;
  dc_plan.axes.push_back(
      SweepAxis::vsource("V1", SweepGrid::linear(0.0, 1.0, 3)));
  dc_plan.probes.push_back(parse_probe("VDB(in)"));
  EXPECT_THROW((void)session.run(dc_plan), PlanError);

  // Current probe in an AC analysis: rejected at compile time.
  AnalysisPlan plan;
  AcSpec spec;
  spec.spacing = AcSpec::Spacing::kLinear;
  spec.points = 1;
  spec.fstart = spec.fstop = 100.0;
  plan.ac = spec;
  plan.probes.push_back(parse_probe("I(V1)"));
  EXPECT_THROW((void)session.run(plan), PlanError);

  // Direct eval of an AC probe at a DC point: also rejected.
  EXPECT_THROW((void)parse_probe("VM(in)").eval(c, Unknowns(2)), PlanError);
}

TEST(AcDeck, AcCardAndSourceSpecParse) {
  const char* deck_text =
      "V1 in 0 DC 1 AC 2 45\n"
      "I1 0 in AC 1m\n"
      "R1 in 0 1k\n"
      ".AC OCT 3 10 80\n"
      ".PROBE VDB(in) VP(in)\n"
      ".END\n";
  auto parsed = parse_netlist(deck_text);
  ASSERT_TRUE(parsed.plan.has_value());
  ASSERT_TRUE(parsed.plan->ac.has_value());
  EXPECT_EQ(parsed.plan->ac->spacing, AcSpec::Spacing::kOctave);
  EXPECT_EQ(parsed.plan->ac->points, 3);
  EXPECT_DOUBLE_EQ(parsed.plan->ac->fstart, 10.0);
  EXPECT_DOUBLE_EQ(parsed.plan->ac->fstop, 80.0);
  ASSERT_EQ(parsed.plan->probes.size(), 2u);

  const auto& v1 = parsed.circuit->get<VoltageSource>("V1");
  EXPECT_DOUBLE_EQ(v1.voltage(), 1.0);
  EXPECT_DOUBLE_EQ(v1.ac_magnitude(), 2.0);
  EXPECT_DOUBLE_EQ(v1.ac_phase_deg(), 45.0);
  // A stand-alone AC group biases to DC 0.
  const auto& i1 = parsed.circuit->get<CurrentSource>("I1");
  EXPECT_DOUBLE_EQ(i1.current(), 0.0);
  EXPECT_DOUBLE_EQ(i1.ac_magnitude(), 1.0e-3);
}

TEST(AcDeck, MixedAnalysesBuildOnePlanPerFamily) {
  // .AC + .DC in one deck used to be rejected; it now yields two plans in
  // the pinned canonical order (DC sweep first, AC last).
  auto parsed = parse_netlist("R1 a 0 1k\n.AC DEC 10 1 1k\n"
                              ".DC TEMP 0 100 25\n.PROBE V(a)\n");
  ASSERT_EQ(parsed.plans.size(), 2u);
  EXPECT_EQ(analysis_kind(parsed.plans[0]), AnalysisKind::kDcSweep);
  EXPECT_EQ(analysis_kind(parsed.plans[1]), AnalysisKind::kAc);
  ASSERT_TRUE(parsed.plan.has_value());
  EXPECT_EQ(analysis_kind(*parsed.plan), AnalysisKind::kDcSweep);
}

TEST(AcDeck, BadFormsAreRejected) {
  EXPECT_THROW((void)parse_netlist("R1 a 0 1k\n.AC LOG 10 1 1k\n"
                                   ".PROBE V(a)\n"),
               NetlistError);
  EXPECT_THROW((void)parse_netlist("R1 a 0 1k\n.AC DEC 10 0 1k\n"
                                   ".PROBE V(a)\n"),
               NetlistError);
  EXPECT_THROW((void)parse_netlist("V1 a 0 1 AC\nR1 a 0 1k\n"),
               NetlistError);
}

TEST(AcDeck, MosfetCardBuildsTheLevelOneDevice) {
  const char* deck_text =
      "VDD vdd 0 1.2\n"
      "VG g 0 0.9\n"
      "M1 vdd g out NFET WL=10\n"
      "R1 out 0 10k\n"
      ".MODEL NFET NMOS (VTO=0.5 KP=100u LAMBDA=0.01)\n";
  auto parsed = parse_netlist(deck_text);
  const auto& m1 = parsed.circuit->get<Mosfet>("M1");
  EXPECT_EQ(m1.model().type, MosfetModel::Type::kNmos);
  EXPECT_DOUBLE_EQ(m1.model().vto, 0.5);
  EXPECT_DOUBLE_EQ(m1.w_over_l(), 10.0);
  // And the deck solves: a source follower biased into saturation.
  SimSession session(*parsed.circuit);
  const Unknowns& x = session.solve_or_throw();
  const double vout = x.node_voltage(parsed.circuit->find_node("out"));
  EXPECT_GT(vout, 0.0);
  EXPECT_LT(vout, 0.9);
}

// ------------------------------------------------- dc_value regression ---

TEST(DcValue, WaveformDcValueIsTheInitialValueNotValueAtZero) {
  // A PWL already moving at t = 0 (knots before zero) interpolates at
  // value_at(0) -- the old DC bias bug; dc_value() must read the initial
  // knot instead.
  const Waveform w = Waveform::pwl({{-1.0e-3, 2.0}, {1.0e-3, 0.0}});
  EXPECT_DOUBLE_EQ(w.value_at(0.0), 1.0);  // mid-ramp
  EXPECT_DOUBLE_EQ(w.dc_value(), 2.0);     // quiescent level

  EXPECT_DOUBLE_EQ(Waveform::pulse(0.3, 5.0, 1.0e-6).dc_value(), 0.3);
  EXPECT_DOUBLE_EQ(Waveform::sin(2.5, 1.0, 1.0e3, 2.0e-3).dc_value(), 2.5);
  EXPECT_DOUBLE_EQ(Waveform::dc(-4.0).dc_value(), -4.0);
}

TEST(DcValue, ParserBiasesSourcesWithTheInitialValue) {
  const char* deck_text =
      "V1 in 0 PWL(-1m 2 1m 0)\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n";
  auto parsed = parse_netlist(deck_text);
  const auto& v1 = parsed.circuit->get<VoltageSource>("V1");
  EXPECT_DOUBLE_EQ(v1.voltage(), 2.0);  // not the 1.0 a value_at(0) gives
  SimSession session(*parsed.circuit);
  const Unknowns& x = session.solve_or_throw();
  EXPECT_NEAR(x.node_voltage(parsed.circuit->find_node("out")), 1.0, 1e-9);
}

}  // namespace
}  // namespace icvbe::spice
