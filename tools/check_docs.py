#!/usr/bin/env python3
"""Documentation link/deck checker.

Keeps README.md and docs/ from rotting:

1. Every relative markdown link in README.md, docs/*.md resolves to an
   existing file or directory.
2. Every deck under examples/decks/ is referenced by docs/DECKS.md, and
   every fenced deck block that follows a deck link matches the deck file
   on disk (comment lines aside) -- the docs show the real thing.
3. With --run <icvbe-binary>: every deck is executed end-to-end through
   the CLI -- once per analysis family it declares (`tran` for .TRAN,
   `ac` for .AC, `run` for .DC/.STEP; multi-analysis combo decks execute
   through every matching subcommand), `simulate` when it declares none.
   Each invocation must exit 0 and produce output.
4. With --run: the ```transcript block in docs/PROTOCOL.md is played
   against a live `icvbe serve` daemon over its AF_UNIX socket. `C: `
   lines are sent as frame heads (`C| ` lines as their body), `S: `
   lines are matched against received frames (`S| ` against body lines);
   a trailing ` ...` makes the comparison a prefix match.

Exit code 0 = all good; 1 = findings (printed one per line).
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")

findings: list[str] = []


def finding(msg: str) -> None:
    findings.append(msg)
    print(f"FAIL: {msg}")


def md_files() -> list[Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_links() -> None:
    for md in md_files():
        text = md.read_text()
        # Strip fenced code blocks: their contents are not hyperlinks.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                finding(f"{md.relative_to(REPO)}: dead link '{target}'")


def deck_lines(path: Path) -> list[str]:
    """Deck content with comment/blank lines removed."""
    out = []
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        out.append(stripped)
    return out


def check_decks_md() -> list[Path]:
    """Check DECKS.md <-> examples/decks consistency; return all decks."""
    decks_md = REPO / "docs" / "DECKS.md"
    deck_dir = REPO / "examples" / "decks"
    decks = sorted(deck_dir.glob("*.cir"))
    if not decks:
        finding("examples/decks/ holds no .cir decks")
    text = decks_md.read_text() if decks_md.exists() else ""
    if not text:
        finding("docs/DECKS.md is missing")
        return decks

    for deck in decks:
        if deck.name not in text:
            finding(f"docs/DECKS.md does not reference {deck.name}")

    # Every fenced block following a deck link must match the deck file.
    section_re = re.compile(
        r"\[`(?P<name>[^`]+\.cir)`\]\([^)]*\)\s*\n+```\n(?P<block>.*?)```",
        re.S,
    )
    for match in section_re.finditer(text):
        deck = deck_dir / match.group("name")
        if not deck.exists():
            finding(f"docs/DECKS.md embeds unknown deck {match.group('name')}")
            continue
        shown = [ln.strip() for ln in match.group("block").splitlines()
                 if ln.strip()]
        actual = deck_lines(deck)
        if shown != actual:
            finding(
                f"docs/DECKS.md block for {deck.name} is out of date "
                f"(shown {len(shown)} lines vs deck {len(actual)})"
            )
    return decks


def deck_subcommands(deck: Path) -> list[str]:
    """All CLI subcommands a deck executes through -- a multi-analysis
    combo deck runs once per family it declares."""
    body = deck.read_text().upper()
    cmds = []
    if re.search(r"^\s*\.(DC|STEP)\b", body, re.M):
        cmds.append("run")
    if re.search(r"^\s*\.TRAN\b", body, re.M):
        cmds.append("tran")
    if re.search(r"^\s*\.AC\b", body, re.M):
        cmds.append("ac")
    return cmds or ["simulate"]


def run_decks(binary: str, decks: list[Path]) -> None:
    for deck in decks:
        for sub in deck_subcommands(deck):
            cmd = [binary, sub, str(deck)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as e:
                finding(f"{' '.join(cmd)}: {e}")
                continue
            if proc.returncode != 0:
                finding(
                    f"{' '.join(cmd)}: exit {proc.returncode}: "
                    f"{proc.stderr.strip().splitlines()[-1] if proc.stderr else ''}"
                )
            elif not proc.stdout.strip():
                finding(f"{' '.join(cmd)}: produced no output")
            else:
                print(f"ok: {deck.name} via '{sub}' "
                      f"({len(proc.stdout.splitlines())} lines)")


# ----------------------------------------------------- protocol transcript --


def parse_transcript(text: str) -> list[tuple[str, str, list[str]]]:
    """Parse a ```transcript block into (direction, head, body_lines)
    steps. Directions: 'C' = send to server, 'S' = expect from server."""
    steps: list[tuple[str, str, list[str]]] = []
    for line in text.splitlines():
        if line.startswith("C: ") or line.startswith("S: "):
            steps.append((line[0], line[3:], []))
        elif line.startswith("C| ") or line.startswith("S| "):
            if not steps or steps[-1][0] != line[0]:
                raise ValueError(f"transcript body line without head: {line}")
            steps[-1][2].append(line[3:])
        elif line.startswith(("C|", "S|")) and line[2:].strip() == "":
            steps[-1][2].append("")  # empty body line
    return steps


def encode_frame(head: str, body_lines: list[str]) -> bytes:
    payload = head
    if body_lines:
        payload += "\n" + "\n".join(body_lines) + "\n"
    raw = payload.encode()
    return str(len(raw)).encode() + b"\n" + raw


class FrameReader:
    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buf = b""

    def read_frame(self) -> str:
        while b"\n" not in self.buf:
            self._recv()
        length_text, rest = self.buf.split(b"\n", 1)
        length = int(length_text)
        while len(rest) < length:
            self.buf = rest
            self._recv()
            rest = self.buf
        self.buf = rest[length:]
        return rest[:length].decode()

    def _recv(self) -> None:
        chunk = self.sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        self.buf += chunk


def match_line(expected: str, actual: str) -> bool:
    """Exact match, or prefix match when `expected` ends with '...'."""
    if expected.endswith("..."):
        return actual.startswith(expected[:-3].rstrip())
    return expected == actual


def check_transcript(binary: str) -> None:
    protocol_md = REPO / "docs" / "PROTOCOL.md"
    if not protocol_md.exists():
        finding("docs/PROTOCOL.md is missing")
        return
    blocks = re.findall(r"```transcript\n(.*?)```", protocol_md.read_text(),
                        re.S)
    if not blocks:
        finding("docs/PROTOCOL.md has no ```transcript block")
        return

    sock_path = tempfile.mktemp(prefix="icvbe_docs_", suffix=".sock")
    server = subprocess.Popen(
        [binary, "serve", "--socket", sock_path, "--workers", "2"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 10.0
        while not os.path.exists(sock_path):
            if time.monotonic() > deadline or server.poll() is not None:
                finding("icvbe serve did not come up for the transcript")
                return
            time.sleep(0.05)

        for block in blocks:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            reader = FrameReader(sock)
            try:
                for direction, head, body in parse_transcript(block):
                    if direction == "C":
                        sock.sendall(encode_frame(head, body))
                        continue
                    frame = reader.read_frame()
                    lines = frame.split("\n")
                    if not match_line(head, lines[0]):
                        finding(f"PROTOCOL.md transcript: expected "
                                f"'{head}', got '{lines[0]}'")
                        return
                    for i, expected in enumerate(body, start=1):
                        if i >= len(lines) or not match_line(expected,
                                                             lines[i]):
                            got = lines[i] if i < len(lines) else "<missing>"
                            finding(f"PROTOCOL.md transcript: body of "
                                    f"'{head}': expected '{expected}', "
                                    f"got '{got}'")
                            return
                print(f"ok: PROTOCOL.md transcript "
                      f"({len(block.splitlines())} lines) played back")
            finally:
                sock.close()
    except (OSError, ConnectionError, ValueError) as e:
        finding(f"PROTOCOL.md transcript: {e}")
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()
        if os.path.exists(sock_path):
            os.unlink(sock_path)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--run",
        metavar="ICVBE",
        help="icvbe CLI binary; when given, every deck is executed",
    )
    args = parser.parse_args()

    check_links()
    decks = check_decks_md()
    if args.run:
        run_decks(args.run, decks)
        check_transcript(args.run)

    if findings:
        print(f"\n{len(findings)} finding(s)")
        return 1
    print("\ndocs check: all good")
    return 0


if __name__ == "__main__":
    sys.exit(main())
