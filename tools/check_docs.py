#!/usr/bin/env python3
"""Documentation link/deck checker.

Keeps README.md and docs/ from rotting:

1. Every relative markdown link in README.md, docs/*.md resolves to an
   existing file or directory.
2. Every deck under examples/decks/ is referenced by docs/DECKS.md, and
   every fenced deck block that follows a deck link matches the deck file
   on disk (comment lines aside) -- the docs show the real thing.
3. With --run <icvbe-binary>: every deck is executed end-to-end through
   the CLI (`tran` for .TRAN decks, `ac` for .AC decks, `run` for
   .DC/.STEP decks, `simulate` otherwise) and must exit 0 and produce
   output.

Exit code 0 = all good; 1 = findings (printed one per line).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")

findings: list[str] = []


def finding(msg: str) -> None:
    findings.append(msg)
    print(f"FAIL: {msg}")


def md_files() -> list[Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_links() -> None:
    for md in md_files():
        text = md.read_text()
        # Strip fenced code blocks: their contents are not hyperlinks.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                finding(f"{md.relative_to(REPO)}: dead link '{target}'")


def deck_lines(path: Path) -> list[str]:
    """Deck content with comment/blank lines removed."""
    out = []
    for line in path.read_text().splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("*"):
            continue
        out.append(stripped)
    return out


def check_decks_md() -> list[Path]:
    """Check DECKS.md <-> examples/decks consistency; return all decks."""
    decks_md = REPO / "docs" / "DECKS.md"
    deck_dir = REPO / "examples" / "decks"
    decks = sorted(deck_dir.glob("*.cir"))
    if not decks:
        finding("examples/decks/ holds no .cir decks")
    text = decks_md.read_text() if decks_md.exists() else ""
    if not text:
        finding("docs/DECKS.md is missing")
        return decks

    for deck in decks:
        if deck.name not in text:
            finding(f"docs/DECKS.md does not reference {deck.name}")

    # Every fenced block following a deck link must match the deck file.
    section_re = re.compile(
        r"\[`(?P<name>[^`]+\.cir)`\]\([^)]*\)\s*\n+```\n(?P<block>.*?)```",
        re.S,
    )
    for match in section_re.finditer(text):
        deck = deck_dir / match.group("name")
        if not deck.exists():
            finding(f"docs/DECKS.md embeds unknown deck {match.group('name')}")
            continue
        shown = [ln.strip() for ln in match.group("block").splitlines()
                 if ln.strip()]
        actual = deck_lines(deck)
        if shown != actual:
            finding(
                f"docs/DECKS.md block for {deck.name} is out of date "
                f"(shown {len(shown)} lines vs deck {len(actual)})"
            )
    return decks


def deck_subcommand(deck: Path) -> str:
    body = deck.read_text().upper()
    if re.search(r"^\s*\.TRAN\b", body, re.M):
        return "tran"
    if re.search(r"^\s*\.AC\b", body, re.M):
        return "ac"
    if re.search(r"^\s*\.(DC|STEP)\b", body, re.M):
        return "run"
    return "simulate"


def run_decks(binary: str, decks: list[Path]) -> None:
    for deck in decks:
        cmd = [binary, deck_subcommand(deck), str(deck)]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as e:
            finding(f"{' '.join(cmd)}: {e}")
            continue
        if proc.returncode != 0:
            finding(
                f"{' '.join(cmd)}: exit {proc.returncode}: "
                f"{proc.stderr.strip().splitlines()[-1] if proc.stderr else ''}"
            )
        elif not proc.stdout.strip():
            finding(f"{' '.join(cmd)}: produced no output")
        else:
            print(f"ok: {deck.name} via '{deck_subcommand(deck)}' "
                  f"({len(proc.stdout.splitlines())} lines)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--run",
        metavar="ICVBE",
        help="icvbe CLI binary; when given, every deck is executed",
    )
    args = parser.parse_args()

    check_links()
    decks = check_decks_md()
    if args.run:
        run_decks(args.run, decks)

    if findings:
        print(f"\n{len(findings)} finding(s)")
        return 1
    print("\ndocs check: all good")
    return 0


if __name__ == "__main__":
    sys.exit(main())
