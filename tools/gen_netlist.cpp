// gen_netlist: emit a synthetic stress deck on stdout.
//
//   gen_netlist <ladder|diode-ladder|bjt-ladder|mesh|rc-ladder> <nodes> [seed]
//
// The decks are the sparse-engine stress workloads (see
// spice/netlist_gen.hpp); pipe one into `icvbe run /dev/stdin` or save it
// for an external SPICE to chew on. Same topology+nodes+seed, same text.

#include <cstdio>
#include <iostream>
#include <string>

#include "icvbe/common/error.hpp"
#include "icvbe/spice/netlist_gen.hpp"

int main(int argc, char** argv) {
  using namespace icvbe;
  try {
    if (argc < 3 || argc > 4) {
      std::fprintf(stderr,
                   "usage: gen_netlist <ladder|diode-ladder|bjt-ladder|mesh|rc-ladder> "
                   "<nodes> [seed]\n");
      return 2;
    }
    spice::SyntheticNetlistSpec spec;
    spec.topology = spice::topology_from_name(argv[1]);
    spec.nodes = std::stoi(argv[2]);
    if (argc == 4) spec.seed = std::stoull(argv[3]);
    std::cout << spice::generate_netlist(spec);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gen_netlist: %s\n", e.what());
    return 1;
  }
}
