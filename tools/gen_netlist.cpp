// gen_netlist: emit a synthetic stress deck on stdout.
//
//   gen_netlist <ladder|diode-ladder|bjt-ladder|mesh|rc-ladder|grid|
//                clock-tree> <nodes>
//               [seed] [--ac]
//
// The decks are the sparse-engine stress workloads (see
// spice/netlist_gen.hpp); pipe one into `icvbe run /dev/stdin` or save it
// for an external SPICE to chew on. Same topology+nodes+seed, same text.
// With --ac the drive source carries an "AC 1" stimulus and the analysis
// becomes an `.AC DEC` sweep with VDB/VP probes (run via `icvbe ac`).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "icvbe/common/error.hpp"
#include "icvbe/spice/netlist_gen.hpp"

int main(int argc, char** argv) {
  using namespace icvbe;
  try {
    spice::SyntheticNetlistSpec spec;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--ac") {
        spec.ac_analysis = true;
      } else if (arg.rfind("--", 0) == 0) {
        throw Error("unknown option '" + arg + "'");
      } else {
        positional.push_back(arg);
      }
    }
    if (positional.size() < 2 || positional.size() > 3) {
      std::fprintf(stderr,
                   "usage: gen_netlist <ladder|diode-ladder|bjt-ladder|mesh|"
                   "rc-ladder|grid|clock-tree> <nodes> [seed] [--ac]\n");
      return 2;
    }
    spec.topology = spice::topology_from_name(positional[0]);
    spec.nodes = std::stoi(positional[1]);
    if (positional.size() == 3) spec.seed = std::stoull(positional[2]);
    std::cout << spice::generate_netlist(spec);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gen_netlist: %s\n", e.what());
    return 1;
  }
}
