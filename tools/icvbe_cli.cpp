// icvbe command-line tool: drive the library without writing C++.
//
//   icvbe simulate <deck.cir>            solve the DC operating point of a
//                                        SPICE-like netlist at its .TEMP
//   icvbe run <deck.cir> [threads] [--sparse[=auto|on|off]]
//                                        execute the deck's .DC/.STEP/.PROBE
//                                        analysis plan, CSV out. --sparse
//                                        picks the linear engine: auto
//                                        (default, by MNA unknown count:
//                                        nodes + source branch currents),
//                                        on (force CSR), off (force dense)
//   icvbe tran <deck.cir> [--method=be|trap] [--sparse[=auto|on|off]]
//                                        execute the deck's .TRAN analysis
//                                        (time-indexed .PROBE series), CSV
//                                        out; --method overrides the deck's
//                                        integration scheme
//   icvbe ac <deck.cir> [threads] [--sparse[=auto|on|off]]
//                                        execute the deck's .AC small-signal
//                                        analysis about the DC operating
//                                        point (frequency-indexed VM/VDB/VP
//                                        .PROBE series), CSV out
//   icvbe sweep <deck.cir> <vsrc> <from> <to> <n> <node>
//                                        DC sweep a voltage source, CSV out
//   icvbe tempsweep <deck.cir> <fromC> <toC> <n> <node>
//                                        temperature sweep, CSV out
//   icvbe extract [sample]               run the paper's analytical method
//                                        on a virtual-lot sample and print
//                                        the extracted .MODEL card
//   icvbe lot [samples] [threads]        characterise a Monte-Carlo lot in
//                                        parallel and print the statistics
//   icvbe table1                         reproduce the paper's Table 1
//   icvbe truthcard                      print the hidden ground-truth card
//   icvbe serve [--socket <path>|--port <p>] [--workers N]
//                                        run the simulation-as-a-service
//                                        daemon (docs/PROTOCOL.md) until
//                                        SIGINT/SIGTERM
//
// Exit codes: 0 success, 1 named runtime error (bad value, missing file,
// deck/analysis mismatch, solver failure), 2 usage error (unknown
// subcommand or option, wrong argument shape) with the usage text.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/csv.hpp"
#include "icvbe/common/table.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"
#include "icvbe/lab/lot_campaign.hpp"
#include "icvbe/server/sim_server.hpp"
#include "icvbe/spice/analysis.hpp"
#include "icvbe/spice/dc_solver.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/plan.hpp"

namespace {

using namespace icvbe;

/// Structural misuse of the command line -- unknown subcommand or option,
/// wrong argument shape. Exits 2 and prints the usage text; everything
/// else an Error names exits 1 without it.
class UsageError : public Error {
 public:
  using Error::Error;
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: icvbe <simulate|run|tran|ac|sweep|tempsweep|extract|"
               "lot|table1|truthcard|serve> [args]\n"
               "  simulate <deck.cir>\n"
               "  tran <deck.cir> [--method=be|trap] [--sparse[=auto|on|off]]\n"
               "      executes the deck's .TRAN/.PROBE analysis, CSV out\n"
               "  ac <deck.cir> [threads] [--sparse[=auto|on|off]]\n"
               "      executes the deck's .AC/.PROBE small-signal analysis\n"
               "      about the DC operating point, CSV out\n"
               "  run <deck.cir> [threads] [--sparse[=auto|on|off]] "
               "[--lanes=K]\n"
               "      --sparse picks the linear engine: auto (default) "
               "switches to the\n"
               "      CSR solver above an MNA-unknown-count threshold "
               "(nodes + source\n"
               "      branch currents), on forces it, off forces the dense "
               "workspace solver\n"
               "      --lanes=K batches .STEP corner fanout K rows at a "
               "time through the\n"
               "      lane-batched sparse solver (results bit-identical to "
               "--lanes=1)\n"
               "  sweep <deck.cir> <vsrc> <from> <to> <points> <node>\n"
               "  tempsweep <deck.cir> <fromC> <toC> <points> <node>\n"
               "  extract [sample-index]\n"
               "  lot [samples] [threads] [--lanes=K]\n"
               "      --lanes=K carries K dies per LU refactor/solve "
               "(bit-identical)\n"
               "  table1\n"
               "  truthcard\n"
               "  serve [--socket <path>|--port <p>] [--workers N]\n"
               "      long-lived daemon speaking docs/PROTOCOL.md; decks in\n"
               "      a combo deck select per analysis (RUN ... DC|TRAN|AC)\n");
}

/// Checked numeric argument parsing: std::stod's bare "stod" exception
/// text is useless at the terminal, so name the argument and show the
/// offending value instead.
double parse_double_arg(const char* what, const std::string& text) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    throw Error(std::string(what) + ": '" + text + "' is not a number");
  }
  if (used != text.size()) {
    throw Error(std::string(what) + ": '" + text + "' is not a number");
  }
  return v;
}

int parse_int_arg(const char* what, const std::string& text) {
  std::size_t used = 0;
  int v = 0;
  try {
    v = std::stoi(text, &used);
  } catch (const std::exception&) {
    throw Error(std::string(what) + ": '" + text + "' is not an integer");
  }
  if (used != text.size()) {
    throw Error(std::string(what) + ": '" + text + "' is not an integer");
  }
  return v;
}

int parse_points_arg(const std::string& text) {
  const int points = parse_int_arg("points", text);
  if (points < 2) {
    throw Error("points: need at least 2 sweep points, got " + text);
  }
  return points;
}

spice::ParsedNetlist load_deck(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    throw Error("cannot open deck '" + path + "'");
  }
  return spice::parse_netlist(f);
}

/// Build an initial-guess vector from the deck's .NODESET hints.
spice::Unknowns guess_from_nodesets(spice::Circuit& c,
                                    const spice::ParsedNetlist& deck) {
  const int n = c.assign_unknowns();
  spice::Unknowns guess(static_cast<std::size_t>(n));
  for (const auto& [node, value] : deck.nodesets) {
    const spice::NodeId id = c.node(node);
    if (id != spice::kGround) {
      guess.raw()[static_cast<std::size_t>(id - 1)] = value;
    }
  }
  return guess;
}

int cmd_simulate(const std::string& path) {
  auto parsed = load_deck(path);
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  const spice::Unknowns guess = guess_from_nodesets(c, parsed);
  const spice::Unknowns x = spice::solve_dc_or_throw(c, {}, &guess);
  std::printf("DC operating point at %.2f C (%d nodes, %zu devices)\n",
              parsed.temperature_celsius, c.node_count() - 1,
              c.devices().size());
  Table t({"node", "voltage [V]"});
  for (int n = 1; n < c.node_count(); ++n) {
    t.add_row({c.node_name(n), format_sig(x.node_voltage(n), 6)});
  }
  t.print(std::cout);
  for (const auto& dev : c.devices()) {
    if (auto* v = dynamic_cast<spice::VoltageSource*>(dev.get())) {
      std::printf("I(%s) = %s A\n", v->name().c_str(),
                  format_sig(v->current(x), 5).c_str());
    }
  }
  std::printf("total dissipation: %s W\n",
              format_sig(c.total_power(x), 4).c_str());
  return 0;
}

/// Parse a `--sparse` / `--sparse=<mode>` flag value.
spice::SparseMode parse_sparse_mode(const std::string& text) {
  if (text.empty() || text == "auto") return spice::SparseMode::kAuto;
  if (text == "on" || text == "sparse") return spice::SparseMode::kSparse;
  if (text == "off" || text == "dense") return spice::SparseMode::kDense;
  throw Error("--sparse: unknown mode '" + text +
              "' (want auto, on, or off)");
}

/// The flag vocabulary shared by the deck-executing subcommands. One
/// scanner instead of three copy-pasted loops: `--sparse[=mode]`
/// everywhere, `--method=` only where the subcommand allows it; unknown
/// `--options` are usage errors.
struct DeckArgs {
  std::vector<std::string> positional;
  spice::SparseMode sparse = spice::SparseMode::kAuto;
  std::optional<spice::IntegrationMethod> method;
  unsigned lanes = 0;
};

/// Parse a `--lanes=K` value: the lane count of the batched solver paths
/// (.STEP fanout for `run`, dies-per-refactor for `lot`).
unsigned parse_lanes_value(const std::string& text) {
  const int lanes = parse_int_arg("--lanes", text);
  if (lanes < 1 || lanes > 1024) {
    throw Error("--lanes: want 1..1024, got " + text);
  }
  return static_cast<unsigned>(lanes);
}

DeckArgs scan_deck_args(const std::vector<std::string>& args,
                        bool allow_method, bool allow_lanes = false) {
  DeckArgs out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--sparse") {
      out.sparse = spice::SparseMode::kAuto;
    } else if (args[i].rfind("--sparse=", 0) == 0) {
      out.sparse = parse_sparse_mode(
          args[i].substr(std::string("--sparse=").size()));
    } else if (allow_lanes && args[i].rfind("--lanes=", 0) == 0) {
      out.lanes = parse_lanes_value(
          args[i].substr(std::string("--lanes=").size()));
    } else if (allow_method && args[i].rfind("--method=", 0) == 0) {
      const std::string m = args[i].substr(std::string("--method=").size());
      if (m == "be" || m == "euler") {
        out.method = spice::IntegrationMethod::kBackwardEuler;
      } else if (m == "trap" || m == "trapezoidal") {
        out.method = spice::IntegrationMethod::kTrapezoidal;
      } else {
        throw Error("--method: unknown method '" + m + "' (want be or trap)");
      }
    } else if (args[i].rfind("--", 0) == 0) {
      throw UsageError("unknown option '" + args[i] + "'");
    } else {
      out.positional.push_back(args[i]);
    }
  }
  return out;
}

/// Shared body of run/tran/ac: load, select the deck plan of `kind`
/// (multi-analysis decks carry up to one plan per family), execute on a
/// warm session, CSV to stdout.
int run_deck_analysis(const std::string& path, spice::AnalysisKind kind,
                      unsigned threads, spice::SparseMode sparse_mode,
                      std::optional<spice::IntegrationMethod> method,
                      unsigned lanes = 0) {
  auto parsed = load_deck(path);
  const spice::AnalysisPlan* deck_plan = parsed.find_plan(kind);
  if (deck_plan == nullptr) {
    const std::string token(spice::to_token(kind));
    throw Error("deck '" + path + "' describes no " + token +
                " analysis (needs ." + token + "-family cards plus .PROBE)");
  }
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  spice::AnalysisPlan plan = *deck_plan;
  plan.threads = threads;
  if (lanes > 0) plan.lanes = lanes;
  if (method.has_value()) plan.transient->method = *method;
  spice::NewtonOptions session_options;
  session_options.sparse = sparse_mode;
  plan.options.sparse = sparse_mode;
  spice::SimSession session(c, session_options);
  // .NODESET hints seed the first operating-point solve -- and, for
  // 2-axis plans, the deterministic start of every outer row.
  if (!parsed.nodesets.empty()) {
    session.seed_warm_start(guess_from_nodesets(c, parsed));
  }
  const spice::SweepResult result = session.run(plan);
  result.write_csv(std::cout);
  return 0;
}

std::atomic<bool> g_interrupted{false};

extern "C" void handle_stop_signal(int) { g_interrupted.store(true); }

int cmd_serve(const std::vector<std::string>& args) {
  server::ServerConfig cfg;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--socket" && i + 1 < args.size()) {
      cfg.socket_path = args[++i];
    } else if (args[i] == "--port" && i + 1 < args.size()) {
      const int port = parse_int_arg("--port", args[++i]);
      if (port < 0 || port > 65535) {
        throw Error("--port: out of range: " + std::to_string(port));
      }
      cfg.tcp_port = port;
      cfg.socket_path.clear();
    } else if (args[i] == "--workers" && i + 1 < args.size()) {
      const int workers = parse_int_arg("--workers", args[++i]);
      if (workers < 0) throw Error("--workers: must be >= 0");
      cfg.workers = static_cast<unsigned>(workers);
    } else {
      throw UsageError("serve: unknown or incomplete option '" + args[i] +
                       "'");
    }
  }
  if (cfg.socket_path.empty() && cfg.tcp_port == 0 &&
      std::none_of(args.begin(), args.end(),
                   [](const std::string& a) { return a == "--port"; })) {
    cfg.socket_path = "/tmp/icvbe.sock";
  }
  server::SimServer server(std::move(cfg));
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  server.start();
  if (server.port() >= 0) {
    std::fprintf(stderr, "icvbe serve: listening on 127.0.0.1:%d (%u workers)\n",
                 server.port(), server.workers());
  } else {
    std::fprintf(stderr, "icvbe serve: listening on %s (%u workers)\n",
                 server.socket_path().c_str(), server.workers());
  }
  server.serve_until(g_interrupted);
  std::fprintf(stderr, "icvbe serve: stopped\n");
  return 0;
}

int cmd_sweep(const std::string& path, const std::string& src, double from,
              double to, int points, const std::string& node) {
  auto parsed = load_deck(path);
  auto& c = *parsed.circuit;
  c.set_temperature(to_kelvin(parsed.temperature_celsius));
  const spice::Unknowns guess = guess_from_nodesets(c, parsed);
  const auto series = spice::dc_sweep_vsource(
      c, src, spice::linspace(from, to, points),
      spice::probe_node_voltage(c, node), {}, &guess);
  csv::write_series(std::cout, series, src, "V(" + node + ")");
  return 0;
}

int cmd_tempsweep(const std::string& path, double from_c, double to_c,
                  int points, const std::string& node) {
  auto parsed = load_deck(path);
  auto& c = *parsed.circuit;
  std::vector<double> temps;
  for (double t : spice::linspace(from_c, to_c, points)) {
    temps.push_back(to_kelvin(t));
  }
  // .NODESET hints are typically written for room temperature, so sweep
  // outward from the grid point nearest 25 C in two warm-started segments
  // and merge -- every point then inherits a close-by predecessor.
  const spice::Unknowns guess = guess_from_nodesets(c, parsed);
  std::size_t mid = 0;
  for (std::size_t i = 1; i < temps.size(); ++i) {
    if (std::abs(temps[i] - 298.15) < std::abs(temps[mid] - 298.15)) mid = i;
  }
  const std::vector<double> up(temps.begin() + static_cast<long>(mid),
                               temps.end());
  const std::vector<double> down(temps.rbegin() +
                                     static_cast<long>(temps.size() - mid - 1),
                                 temps.rend());
  const auto probe = spice::probe_node_voltage(c, node);
  const Series s_up = spice::temperature_sweep(c, up, probe, {}, &guess);
  const Series s_down = spice::temperature_sweep(c, down, probe, {}, &guess);
  Series merged("tempsweep");
  for (std::size_t i = s_down.size(); i-- > 1;) {
    merged.push_back(s_down.x(i), s_down.y(i));
  }
  for (std::size_t i = 0; i < s_up.size(); ++i) {
    merged.push_back(s_up.x(i), s_up.y(i));
  }
  Series celsius("tempsweep");
  celsius.reserve(merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    celsius.push_back(to_celsius(merged.x(i)), merged.y(i));
  }
  csv::write_series(std::cout, celsius, "T_celsius", "V(" + node + ")");
  return 0;
}

int cmd_extract(int sample_index) {
  lab::SiliconLot lot;
  lab::CampaignConfig cfg;
  cfg.seed = 1000 + static_cast<std::uint64_t>(sample_index);
  lab::Laboratory laboratory(lot.sample(sample_index), cfg);
  const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
  const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);
  std::printf("sample %d of the virtual lot\n", sample_index);
  std::printf("  computed die temperatures: T1 = %.2f K, T3 = %.2f K "
              "(sensor: %.2f / %.2f K)\n",
              m.t1_computed, m.t3_computed, m.p1.t_sensor, m.p3.t_sensor);
  std::printf("  extracted: EG = %.4f eV, XTI = %.3f\n",
              m.with_computed_t.eg, m.with_computed_t.xti);
  spice::BjtModel card = lot.sample(sample_index).qa;
  card.eg = m.with_computed_t.eg;
  card.xti = m.with_computed_t.xti;
  std::printf("%s\n",
              spice::format_bjt_model("PNP_EXTRACTED", card).c_str());
  return 0;
}

int cmd_lot(int samples, unsigned threads, unsigned lanes) {
  lab::SiliconLot lot;
  lab::LotCampaignConfig cfg;
  cfg.samples = samples;
  cfg.threads = threads;
  cfg.lanes = lanes;
  // The batch engine is sparse; --lanes forces the per-die path (K <= 1)
  // onto the same engine, which is what makes --lanes=1 the bit-identical
  // scalar reference for any --lanes=K.
  if (lanes > 0) cfg.lab.newton.sparse = spice::SparseMode::kSparse;
  const lab::LotCampaign campaign(lot, cfg);
  const auto dies = campaign.run();
  const lab::LotSummary s = lab::LotCampaign::summarise(dies);

  Table t({"quantity", "mean", "sigma", "q10", "median", "q90"});
  auto row = [&](const char* name, const lab::LotStatistic& st, int digits) {
    t.add_row({name, format_fixed(st.mean, digits),
               format_fixed(st.stddev, digits), format_fixed(st.q10, digits),
               format_fixed(st.q50, digits), format_fixed(st.q90, digits)});
  };
  row("classical EG [eV]", s.eg_classical, 4);
  row("analytical EG [eV]", s.eg_meijer, 4);
  row("analytical XTI", s.xti_meijer, 2);
  row("dT1 [K]", s.delta_t1, 2);
  row("dT3 [K]", s.delta_t3, 2);
  std::printf("%d dies ok, %d failed (truth: EG = %.4f eV, XTI = %.2f)\n",
              s.dies_ok, s.dies_failed, lot.true_eg(), lot.true_xti());
  t.print(std::cout);
  return s.dies_failed == 0 ? 0 : 1;
}

int cmd_table1() {
  lab::SiliconLot lot;
  Table t({"sample", "dT1 [K]", "dT3 [K]"});
  for (int i = 1; i <= 5; ++i) {
    lab::CampaignConfig cfg;
    cfg.seed = 100 + static_cast<std::uint64_t>(i);
    lab::Laboratory laboratory(lot.sample(i), cfg);
    const auto sweep = laboratory.test_cell_sweep({-26.15, 23.85, 74.85});
    const auto m = extract::meijer_from_cell(sweep, -26.15, 23.85, 74.85);
    const auto cmp = extract::compare_temperatures(m);
    t.add_row({std::to_string(i), format_fixed(cmp.delta_t1(), 2),
               format_fixed(cmp.delta_t3(), 2)});
  }
  t.print(std::cout);
  std::printf("paper bands: dT1 in [-4.61, -1.82], dT3 in [+3.99, +7.28]\n");
  return 0;
}

int cmd_truthcard() {
  lab::SiliconLot lot;
  std::printf("%s\n",
              spice::format_bjt_model("PNP_TRUTH", lot.truth().pnp).c_str());
  return 0;
}

/// One dispatch for every subcommand; throws UsageError on structural
/// misuse, Error on named runtime failures.
int dispatch(const std::vector<std::string>& args) {
  if (args.empty()) throw UsageError("missing subcommand");
  const std::string& cmd = args[0];
  if (cmd == "simulate") {
    if (args.size() != 2) throw UsageError("simulate: want <deck.cir>");
    return cmd_simulate(args[1]);
  }
  if (cmd == "run" || cmd == "ac") {
    const DeckArgs deck =
        scan_deck_args(args, /*allow_method=*/false,
                       /*allow_lanes=*/cmd == "run");
    if (deck.positional.size() != 1 && deck.positional.size() != 2) {
      throw UsageError(cmd + ": want <deck.cir> [threads]");
    }
    const int threads = deck.positional.size() > 1
                            ? parse_int_arg("threads", deck.positional[1])
                            : 1;
    if (threads < 0) throw Error("threads: must be >= 0");
    return run_deck_analysis(deck.positional[0],
                             cmd == "run" ? spice::AnalysisKind::kDcSweep
                                          : spice::AnalysisKind::kAc,
                             static_cast<unsigned>(threads), deck.sparse,
                             std::nullopt, deck.lanes);
  }
  if (cmd == "tran") {
    const DeckArgs deck = scan_deck_args(args, /*allow_method=*/true);
    if (deck.positional.size() != 1) {
      throw UsageError("tran: want <deck.cir>");
    }
    return run_deck_analysis(deck.positional[0],
                             spice::AnalysisKind::kTransient, 1, deck.sparse,
                             deck.method);
  }
  if (cmd == "sweep") {
    if (args.size() != 7) {
      throw UsageError("sweep: want <deck.cir> <vsrc> <from> <to> <points> "
                       "<node>");
    }
    return cmd_sweep(args[1], args[2], parse_double_arg("from", args[3]),
                     parse_double_arg("to", args[4]),
                     parse_points_arg(args[5]), args[6]);
  }
  if (cmd == "tempsweep") {
    if (args.size() != 6) {
      throw UsageError("tempsweep: want <deck.cir> <fromC> <toC> <points> "
                       "<node>");
    }
    return cmd_tempsweep(args[1], parse_double_arg("fromC", args[2]),
                         parse_double_arg("toC", args[3]),
                         parse_points_arg(args[4]), args[5]);
  }
  if (cmd == "extract") {
    if (args.size() > 2) throw UsageError("extract: want [sample-index]");
    return cmd_extract(
        args.size() > 1 ? parse_int_arg("sample-index", args[1]) : 1);
  }
  if (cmd == "lot") {
    std::vector<std::string> positional;
    unsigned lanes = 0;
    for (std::size_t i = 1; i < args.size(); ++i) {
      if (args[i].rfind("--lanes=", 0) == 0) {
        lanes = parse_lanes_value(
            args[i].substr(std::string("--lanes=").size()));
      } else if (args[i].rfind("--", 0) == 0) {
        throw UsageError("lot: unknown option '" + args[i] + "'");
      } else {
        positional.push_back(args[i]);
      }
    }
    if (positional.size() > 2) {
      throw UsageError("lot: want [samples] [threads] [--lanes=K]");
    }
    const int samples =
        !positional.empty() ? parse_int_arg("samples", positional[0]) : 25;
    if (samples < 1) throw Error("samples: must be >= 1");
    const int threads =
        positional.size() > 1 ? parse_int_arg("threads", positional[1]) : 0;
    if (threads < 0) throw Error("threads: must be >= 0");
    return cmd_lot(samples, static_cast<unsigned>(threads), lanes);
  }
  if (cmd == "table1") return cmd_table1();
  if (cmd == "truthcard") return cmd_truthcard();
  if (cmd == "serve") return cmd_serve(args);
  throw UsageError("unknown subcommand '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return dispatch(args);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "icvbe: %s\n", e.what());
    print_usage(stderr);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "icvbe: %s\n", e.what());
    return 1;
  }
}
