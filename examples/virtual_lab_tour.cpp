// A guided tour of the virtual laboratory substrate: the ground-truth
// silicon, the instruments and their error budgets, the fixture thermal
// model, and the raw measurements every experiment in this repository is
// built from. Useful to understand what the benches consume.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "icvbe/common/ascii_plot.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/lab/campaign.hpp"
#include "icvbe/physics/saturation_current.hpp"

int main() {
  using namespace icvbe;

  std::printf("== 1. The silicon ==\n");
  lab::SiliconLot lot;
  const auto& truth = lot.truth();
  std::printf(
      "ground truth PNP: IS = %.2e A, BF = %.0f, EG = %.4f eV, XTI = %.2f\n",
      truth.pnp.is, truth.pnp.bf, truth.pnp.eg, truth.pnp.xti);
  std::printf(
      "vertical parasitic: ISS_E = %.2e A (ns = %.2f, EG_eff = %.3f eV, "
      "beta = %.1f)\n",
      truth.pnp.iss_e, truth.pnp.ns_e, truth.pnp.eg_sub_e, truth.pnp.bf_sub);
  for (int i = 1; i <= 3; ++i) {
    const auto s = lot.sample(i);
    std::printf(
        "  sample %d: IS spread %+5.1f %%, op-amp offset %+5.2f mV, fixture "
        "leak %.3f\n",
        i, (s.qa.is / truth.pnp.is - 1.0) * 100.0, s.opamp_offset * 1e3,
        s.fixture.leak);
  }

  std::printf("\n== 2. The fixture: die vs chamber temperature ==\n");
  const auto s1 = lot.sample(1);
  std::printf("chamber [C]   die [C]   (sample 1, cell powered)\n");
  for (double tc : {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0}) {
    const double die = s1.fixture.die_temperature(to_kelvin(tc), 230e-6);
    std::printf("   %6.1f    %7.2f\n", tc, to_celsius(die));
  }
  std::printf("(pulled toward the %.1f C lab room, plus self-heating)\n",
              to_celsius(s1.fixture.room_kelvin));

  std::printf("\n== 3. The instruments ==\n");
  lab::Pt100Sensor sensor(Rng(12));
  lab::SmuChannel smu(Rng(13));
  std::printf("pt100 at a true 25.00 C: reads %.3f C (offset %+.3f K)\n",
              to_celsius(sensor.read(298.15)), sensor.systematic_offset());
  std::printf("SMU measuring a true 0.650000 V: reads %.6f V\n",
              smu.measure_voltage(0.65));
  std::printf("SMU measuring a true 1.000e-6 A: reads %.4e A\n",
              smu.measure_current(1e-6));

  std::printf("\n== 4. A raw campaign: VBE(T) on the single DUT ==\n");
  lab::CampaignConfig cfg;
  cfg.seed = 7;
  lab::Laboratory laboratory(lot.sample(1), cfg);
  const auto pts = laboratory.vbe_vs_temperature(
      1e-6, {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0});
  std::printf("sensor T [K]   true die T [K]   VBE [V]\n");
  Series vbe("VBE(T)");
  for (const auto& p : pts) {
    std::printf("   %7.2f        %7.2f       %.5f\n", p.t_sensor,
                p.t_die_true, p.vbe);
    vbe.push_back(p.t_sensor, p.vbe);
  }
  AsciiPlotOptions opt;
  opt.title = "VBE(T) at IC = 1 uA (what the classical method fits)";
  opt.x_label = "sensor temperature [K]";
  opt.height = 12;
  AsciiPlot plot(opt);
  plot.add(vbe);
  plot.print(std::cout);

  std::printf(
      "\nNote the die column: the extraction methods never see it. The "
      "paper's test\nstructure computes it from the PTAT dVBE -- run "
      "examples/quickstart to see that.\n");
  return 0;
}
