// Quickstart: extract the SPICE temperature parameters (EG, XTI) of a BJT
// with the paper's test-structure method, in ~30 lines of user code.
//
//   1. get a packaged die (here: a Monte-Carlo sample of the virtual lot),
//   2. sweep the bandgap test cell over three chamber settings,
//   3. compute the die temperatures from the PTAT dVBE (eq. 16),
//   4. solve the two Meijer identities (eqs. 14-15) for EG and XTI.

#include <cstdio>

#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

int main() {
  using namespace icvbe;

  // A diffusion lot of virtual silicon; sample(1) is one packaged die.
  lab::SiliconLot lot;
  lab::Laboratory laboratory(lot.sample(1), lab::CampaignConfig{});

  // Measure the test cell at the paper's three temperatures (Celsius).
  const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});

  // Run the full analytical method: computed die temperatures + 2x2 solve.
  const auto result = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);

  std::printf("sensor temperatures  : %7.2f  %7.2f  %7.2f K\n",
              result.p1.t_sensor, result.p2.t_sensor, result.p3.t_sensor);
  std::printf("computed die temps   : %7.2f  (ref)    %7.2f K\n",
              result.t1_computed, result.t3_computed);
  std::printf("extracted (measured T): EG = %.4f eV, XTI = %.2f\n",
              result.with_measured_t.eg, result.with_measured_t.xti);
  std::printf("extracted (computed T): EG = %.4f eV, XTI = %.2f\n",
              result.with_computed_t.eg, result.with_computed_t.xti);
  std::printf("ground truth          : EG = %.4f eV, XTI = %.2f\n",
              lot.true_eg(), lot.true_xti());
  return 0;
}
