// Lot characterisation: run both extraction methods across many packaged
// samples of a diffusion lot and compare their accuracy statistics -- the
// workload a modelling group would run with this library. The per-die work
// is fanned across a thread pool by lab::LotCampaign; the results are
// deterministic in the thread count.

#include <cstdio>
#include <iostream>

#include "icvbe/common/table.hpp"
#include "icvbe/lab/lot_campaign.hpp"

int main() {
  using namespace icvbe;

  lab::SiliconLot lot;
  lab::LotCampaignConfig cfg;
  cfg.samples = 10;
  cfg.seed_base = 500;
  const lab::LotCampaign campaign(lot, cfg);

  const auto dies = campaign.run();

  Table per_sample({"sample", "classical EG (sensor T)", "analytical EG",
                    "analytical XTI", "dT1 [K]", "dT3 [K]"});
  for (const auto& d : dies) {
    if (!d.ok) {
      std::printf("sample %d failed: %s\n", d.index, d.error.c_str());
      continue;
    }
    per_sample.add_row({std::to_string(d.index),
                        format_fixed(d.eg_classical, 4),
                        format_fixed(d.eg_meijer, 4),
                        format_fixed(d.xti_meijer, 2),
                        format_fixed(d.delta_t1, 2),
                        format_fixed(d.delta_t3, 2)});
  }

  std::printf("Per-sample extraction across the lot:\n");
  per_sample.print(std::cout);

  const lab::LotSummary s = lab::LotCampaign::summarise(dies);
  std::printf("\nLot statistics (truth: EG = %.4f eV, XTI = %.2f):\n",
              lot.true_eg(), lot.true_xti());
  std::printf("  classical  EG: mean %.4f eV (bias %+6.1f mV), sigma %.1f mV\n",
              s.eg_classical.mean,
              (s.eg_classical.mean - lot.true_eg()) * 1e3,
              s.eg_classical.stddev * 1e3);
  std::printf("  analytical EG: mean %.4f eV (bias %+6.1f mV), sigma %.1f mV\n",
              s.eg_meijer.mean, (s.eg_meijer.mean - lot.true_eg()) * 1e3,
              s.eg_meijer.stddev * 1e3);
  std::printf("  analytical XTI: mean %.2f, sigma %.2f\n", s.xti_meijer.mean,
              s.xti_meijer.stddev);
  std::printf(
      "\nThe analytical method's bias is a small fraction of the classical "
      "method's --\nthe paper's central claim, reproduced across the lot.\n");
  return 0;
}
