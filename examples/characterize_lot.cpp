// Lot characterisation: run both extraction methods across many packaged
// samples of a diffusion lot and compare their accuracy statistics -- the
// workload a modelling group would run with this library.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "icvbe/common/constants.hpp"
#include "icvbe/common/table.hpp"
#include "icvbe/extract/best_fit.hpp"
#include "icvbe/extract/dataset.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

namespace {

struct Stats {
  double mean = 0.0;
  double sigma = 0.0;
};

Stats stats_of(const std::vector<double>& v) {
  Stats s;
  for (double x : v) s.mean += x;
  s.mean /= static_cast<double>(v.size());
  for (double x : v) s.sigma += (x - s.mean) * (x - s.mean);
  s.sigma = std::sqrt(s.sigma / static_cast<double>(v.size()));
  return s;
}

}  // namespace

int main() {
  using namespace icvbe;

  constexpr int kSamples = 10;
  lab::SiliconLot lot;

  std::vector<double> eg_classical, eg_analytical, xti_analytical;
  Table per_sample({"sample", "classical EG (sensor T)", "analytical EG",
                    "analytical XTI", "dT1 [K]", "dT3 [K]"});

  for (int i = 1; i <= kSamples; ++i) {
    lab::CampaignConfig cfg;
    cfg.seed = 500 + static_cast<std::uint64_t>(i);
    lab::Laboratory laboratory(lot.sample(i), cfg);

    // Classical method: VBE(T) on the single DUT, sensor temperatures.
    const auto pts = laboratory.vbe_vs_temperature(
        1e-6, {-50.0, -25.0, 0.0, 25.0, 50.0, 75.0, 100.0, 125.0});
    extract::BestFitOptions opt;
    opt.t0 = to_kelvin(25.0);
    const auto classical =
        extract::best_fit_eg_xti(extract::samples_from_lab(pts), opt);

    // Analytical method on the test cell.
    const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
    const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);
    const auto cmp = extract::compare_temperatures(m);

    eg_classical.push_back(classical.eg);
    eg_analytical.push_back(m.with_computed_t.eg);
    xti_analytical.push_back(m.with_computed_t.xti);
    per_sample.add_row({std::to_string(i), format_fixed(classical.eg, 4),
                        format_fixed(m.with_computed_t.eg, 4),
                        format_fixed(m.with_computed_t.xti, 2),
                        format_fixed(cmp.delta_t1(), 2),
                        format_fixed(cmp.delta_t3(), 2)});
  }

  std::printf("Per-sample extraction across the lot:\n");
  per_sample.print(std::cout);

  const Stats sc = stats_of(eg_classical);
  const Stats sa = stats_of(eg_analytical);
  const Stats sx = stats_of(xti_analytical);
  std::printf("\nLot statistics (truth: EG = %.4f eV, XTI = %.2f):\n",
              lot.true_eg(), lot.true_xti());
  std::printf("  classical  EG: mean %.4f eV (bias %+6.1f mV), sigma %.1f mV\n",
              sc.mean, (sc.mean - lot.true_eg()) * 1e3, sc.sigma * 1e3);
  std::printf("  analytical EG: mean %.4f eV (bias %+6.1f mV), sigma %.1f mV\n",
              sa.mean, (sa.mean - lot.true_eg()) * 1e3, sa.sigma * 1e3);
  std::printf("  analytical XTI: mean %.2f, sigma %.2f\n", sx.mean, sx.sigma);
  std::printf(
      "\nThe analytical method's bias is a small fraction of the classical "
      "method's --\nthe paper's central claim, reproduced across the lot.\n");
  return 0;
}
