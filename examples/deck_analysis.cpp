// Deck-driven analysis: the whole study -- circuit, sweep axes, probes --
// lives in SPICE-deck text; C++ only executes the resulting AnalysisPlan.
// The same deck runs unchanged through `icvbe run <deck.cir>`.

#include <iostream>

#include "icvbe/common/constants.hpp"
#include "icvbe/spice/netlist.hpp"
#include "icvbe/spice/plan.hpp"

int main() {
  using namespace icvbe;

  static const char* kDeck = R"(
* IC(VBE) family of a diode-connected PNP: VBE on the inner axis,
* temperature stepped on the outer -- the shape of the paper's Fig. 5.
.MODEL PNP8 PNP (IS=2e-16 BF=45 EG=1.17 XTI=3.5 TNOM=298.15)
VE e 0 0.6
Q1 0 0 e PNP8
.STEP TEMP LIST -50 25 125
.DC VE 0.45 0.75 0.05
.PROBE IC(Q1) V(e)
.END
)";

  auto parsed = spice::parse_netlist(kDeck);
  auto& circuit = *parsed.circuit;
  circuit.set_temperature(to_kelvin(parsed.temperature_celsius));

  spice::AnalysisPlan plan = *parsed.plan;  // present: deck has .STEP/.DC
  std::cout << "deck plan: " << plan.axes.size() << " axes, "
            << plan.probes.size() << " probes ("
            << plan.probes.front().to_string() << ", "
            << plan.probes.back().to_string() << ")\n\n";

  spice::SimSession session(circuit);
  const spice::SweepResult family = session.run(plan);

  family.table().print(std::cout);
  std::cout << "\nCSV of the same result:\n";
  family.write_csv(std::cout);
  return 0;
}
