// Design flow example: use the library the way section 6 of the paper
// does -- prototype a low-voltage bandgap reference, diagnose its
// temperature behaviour with a properly extracted model card, and trim
// RadjA for minimum drift.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "icvbe/bandgap/banba_cell.hpp"
#include "icvbe/bandgap/test_cell.hpp"
#include "icvbe/common/constants.hpp"
#include "icvbe/common/table.hpp"
#include "icvbe/extract/meijer.hpp"
#include "icvbe/lab/campaign.hpp"

namespace {

using namespace icvbe;

double tempco_ppm(const Series& vref_curve) {
  const double spread = vref_curve.max_y() - vref_curve.min_y();
  const double span = vref_curve.max_x() - vref_curve.min_x();
  double mean = 0.0;
  for (std::size_t i = 0; i < vref_curve.size(); ++i) mean += vref_curve.y(i);
  mean /= static_cast<double>(vref_curve.size());
  return spread / mean / span * 1e6;  // ppm/K (box method)
}

}  // namespace

int main() {
  lab::SiliconLot lot;

  // Step 1: extract the real device parameters with the test structure.
  lab::CampaignConfig cfg;
  cfg.seed = 321;
  lab::Laboratory laboratory(lot.sample(4), cfg);
  const auto sweep = laboratory.test_cell_sweep({-25.0, 25.0, 75.0});
  const auto m = extract::meijer_from_cell(sweep, -25.0, 25.0, 75.0);
  std::printf("extracted card: EG = %.4f eV, XTI = %.2f\n",
              m.with_computed_t.eg, m.with_computed_t.xti);

  // Step 2: build the design deck -- the extracted card plus the parasitic
  // and offset the test structure exposed -- and sweep the gain resistor
  // RB to place the curvature apex mid-range.
  lab::DieSample deck = lot.sample(4);
  deck.qa.eg = deck.qb.eg = m.with_computed_t.eg;
  deck.qa.xti = deck.qb.xti = m.with_computed_t.xti;

  std::vector<double> grid_k;
  for (double t = -40.0; t <= 125.0; t += 15.0) grid_k.push_back(to_kelvin(t));

  Table rb_sweep({"RB [ohm]", "VREF(25 C) [V]", "spread [mV]", "tempco [ppm/K]"});
  double best_rb = 0.0, best_spread = 1e9;
  for (double rb : {2.30e3, 2.38e3, 2.44e3, 2.50e3, 2.58e3}) {
    bandgap::TestCellParams p;
    p.qa_model = deck.qa;
    p.qb_model = deck.qb;
    p.opamp_offset = deck.opamp_offset;
    p.rb = rb;
    spice::Circuit c;
    auto h = bandgap::build_test_cell(c, p);
    Series curve("vref");
    for (double tk : grid_k) {
      curve.push_back(tk, bandgap::solve_cell_at(c, h, tk).vref);
    }
    const double spread = (curve.max_y() - curve.min_y()) * 1e3;
    rb_sweep.add_row({format_fixed(rb, 0),
                      format_fixed(curve.y(curve.nearest_index(298.15)), 4),
                      format_fixed(spread, 1),
                      format_fixed(tempco_ppm(curve), 1)});
    if (spread < best_spread) {
      best_spread = spread;
      best_rb = rb;
    }
  }
  std::printf("\nRB sweep on the extracted deck:\n");
  rb_sweep.print(std::cout);
  std::printf("chosen RB = %.0f ohm\n", best_rb);

  // Step 3: trim RadjA on the chosen design (the paper's S1 -> S4 move).
  bandgap::TestCellParams p;
  p.qa_model = deck.qa;
  p.qb_model = deck.qb;
  p.opamp_offset = deck.opamp_offset;
  p.rb = best_rb;
  spice::Circuit c;
  auto h = bandgap::build_test_cell(c, p);
  const auto trim = bandgap::trim_radja(c, h, grid_k, 3.0e3, 25);
  std::printf("\nRadjA trim: best = %.0f ohm, VREF spread %.1f mV -> %.2f "
              "ppm/K over -40..125 C (mean %.4f V)\n",
              trim.radja, trim.vref_spread * 1e3,
              trim.vref_spread / trim.vref_mean / (grid_k.back() - grid_k.front()) * 1e6,
              trim.vref_mean);

  // Step 4: the paper's concluding suggestion -- prototype a *sub-1-V*
  // reference (Banba, ref [10]) with the same extracted card.
  bandgap::BanbaCellParams bp;
  bp.qa_model = deck.qa;
  bp.qb_model = deck.qb;
  bp.pmos = bandgap::banba_default_pmos();
  spice::Circuit cb;
  auto hb = bandgap::build_banba_cell(cb, bp);
  Series banba("banba");
  for (double tk : grid_k) {
    banba.push_back(tk, bandgap::solve_banba_at(cb, hb, bp, tk).vref);
  }
  const double spread = (banba.max_y() - banba.min_y()) * 1e3;
  std::printf("\nSub-1-V Banba prototype from the same card: VREF(25 C) = "
              "%.3f V from VDD = %.1f V,\nuntrimmed spread %.1f mV over "
              "-40..125 C (%.1f ppm/K)\n",
              banba.y(banba.nearest_index(298.15)), bp.vdd, spread,
              tempco_ppm(banba));
  return 0;
}
